/**
 * @file
 * Unit and stress tests for the parallel sweep engine: the
 * deterministic JSON writer, the stats JSON visitor, per-job
 * exception capture, and the serial-vs-parallel byte-identical
 * output guarantee.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>

#include "sim/event_queue.hh"
#include "sim/json.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"
#include "sweep/sweep_runner.hh"

using namespace ehpsim;

TEST(Json, EscapesControlAndQuoteCharacters)
{
    EXPECT_EQ(json::escape("plain"), "plain");
    EXPECT_EQ(json::escape("a\"b"), "a\\\"b");
    EXPECT_EQ(json::escape("back\\slash"), "back\\\\slash");
    EXPECT_EQ(json::escape("line\nbreak\ttab"),
              "line\\nbreak\\ttab");
    EXPECT_EQ(json::escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Json, NumberFormattingIsCanonical)
{
    EXPECT_EQ(json::formatNumber(0), "0");
    EXPECT_EQ(json::formatNumber(42), "42");
    EXPECT_EQ(json::formatNumber(-3), "-3");
    EXPECT_EQ(json::formatNumber(1e15), "1000000000000000");
    EXPECT_EQ(json::formatNumber(2.5), "2.5");
    EXPECT_EQ(json::formatNumber(1.0 / 0.0), "null");
    EXPECT_EQ(json::formatNumber(0.0 / 0.0), "null");
}

TEST(Json, WriterProducesValidNestedDocument)
{
    std::ostringstream oss;
    json::JsonWriter jw(oss);
    jw.beginObject();
    jw.kv("name", "run");
    jw.kv("count", std::uint64_t(3));
    jw.key("values");
    jw.beginArray();
    jw.value(1.5).value(std::int64_t(-2)).value(true).nullValue();
    jw.endArray();
    jw.key("empty");
    jw.beginObject();
    jw.endObject();
    jw.endObject();
    EXPECT_TRUE(jw.done());
    const std::string doc = oss.str();
    EXPECT_EQ(doc,
              "{\n"
              "  \"name\": \"run\",\n"
              "  \"count\": 3,\n"
              "  \"values\": [\n"
              "    1.5,\n"
              "    -2,\n"
              "    true,\n"
              "    null\n"
              "  ],\n"
              "  \"empty\": {}\n"
              "}");
}

TEST(Json, MisuseIsAnError)
{
    std::ostringstream oss;
    json::JsonWriter jw(oss);
    jw.beginObject();
    EXPECT_DEATH(jw.value(1.0), "without a key");
}

TEST(Stats, DumpJsonMirrorsTheGroupTree)
{
    stats::StatGroup root(nullptr, "system");
    stats::StatGroup child(&root, "cache");
    stats::Scalar hits(&child, "hits", "demand hits");
    hits += 7;
    stats::Average lat(&child, "lat", "latency");
    lat.sample(10);
    lat.sample(20);
    stats::Formula rate(&root, "rate", "", [] { return 0.5; });
    stats::Distribution dist(&root, "sizes", "");
    dist.init(0, 100, 4);
    dist.sample(10);
    dist.sample(250);

    std::ostringstream oss;
    stats::dumpJson(root, oss);
    const std::string doc = oss.str();
    EXPECT_NE(doc.find("\"name\": \"system\""), std::string::npos);
    EXPECT_NE(doc.find("\"hits\": 7"), std::string::npos);
    EXPECT_NE(doc.find("\"mean\": 15"), std::string::npos);
    EXPECT_NE(doc.find("\"rate\": 0.5"), std::string::npos);
    EXPECT_NE(doc.find("\"overflows\": 1"), std::string::npos);
    EXPECT_NE(doc.find("\"cache\": {"), std::string::npos);
}

namespace
{

/**
 * A miniature but real simulation job: its own EventQueue and stats
 * tree, with the result derived only from the job's own inputs so
 * output is independent of scheduling.
 */
void
simJob(unsigned idx, json::JsonWriter &jw)
{
    EventQueue eq;
    stats::StatGroup root(nullptr, "job");
    stats::Scalar work(&root, "work", "accumulated work");
    for (unsigned i = 0; i < 50 + idx; ++i) {
        eq.scheduleLambda((i + 1) * 10,
                          [&work, i] { work += double(i % 7); });
    }
    eq.run();
    jw.beginObject();
    jw.kv("index", std::uint64_t(idx));
    jw.kv("ticks", eq.curTick());
    jw.kv("events", eq.numProcessed());
    jw.kv("work", work.value());
    jw.key("stats");
    root.dumpJsonStats(jw);
    jw.endObject();
}

/** Build a fresh runner holding @p n copies of the sim job. */
sweep::SweepRunner
makeRunner(unsigned n, unsigned workers)
{
    sweep::SweepRunner runner(workers);
    for (unsigned i = 0; i < n; ++i) {
        runner.addJob("job" + std::to_string(i),
                      [i](json::JsonWriter &jw) { simJob(i, jw); });
    }
    return runner;
}

std::string
sweepJson(unsigned n, unsigned workers)
{
    auto runner = makeRunner(n, workers);
    std::ostringstream oss;
    sweep::SweepRunner::dumpJson(oss, "stress", runner.run());
    return oss.str();
}

} // anonymous namespace

TEST(SweepRunner, ResultsAreOrderedByJobIndex)
{
    sweep::SweepRunner runner(4);
    for (unsigned i = 0; i < 16; ++i) {
        runner.addJob("j" + std::to_string(i),
                      [i](json::JsonWriter &jw) {
                          jw.beginObject();
                          jw.kv("id", std::uint64_t(i));
                          jw.endObject();
                      });
    }
    const auto results = runner.run();
    ASSERT_EQ(results.size(), 16u);
    for (unsigned i = 0; i < 16; ++i) {
        EXPECT_EQ(results[i].index, i);
        EXPECT_EQ(results[i].name, "j" + std::to_string(i));
        EXPECT_TRUE(results[i].ok);
        EXPECT_NE(results[i].output.find("\"id\": " +
                                         std::to_string(i)),
                  std::string::npos);
    }
}

TEST(SweepRunner, CapturesPerJobExceptions)
{
    sweep::SweepRunner runner(3);
    runner.addJob("good", [](json::JsonWriter &jw) {
        jw.beginObject();
        jw.kv("ok", true);
        jw.endObject();
    });
    runner.addJob("bad", [](json::JsonWriter &) {
        fatal("deliberately broken config");
    });
    runner.addJob("also_good",
                  [](json::JsonWriter &jw) { jw.value(1.0); });

    const auto results = runner.run();
    ASSERT_EQ(results.size(), 3u);
    EXPECT_TRUE(results[0].ok);
    EXPECT_FALSE(results[1].ok);
    EXPECT_NE(results[1].error.find("deliberately broken"),
              std::string::npos);
    EXPECT_TRUE(results[1].output.empty());
    EXPECT_TRUE(results[2].ok);
}

TEST(SweepRunner, FailedJobSerializesAsErrorStatus)
{
    sweep::SweepRunner runner(2);
    runner.addJob("boom", [](json::JsonWriter &) {
        throw std::runtime_error("kaput");
    });
    std::ostringstream oss;
    sweep::SweepRunner::dumpJson(oss, "errors", runner.run());
    const std::string doc = oss.str();
    EXPECT_NE(doc.find("\"status\": \"error\""), std::string::npos);
    EXPECT_NE(doc.find("\"error\": \"kaput\""), std::string::npos);
    EXPECT_NE(doc.find("\"output\": null"), std::string::npos);
}

TEST(SweepRunner, ZeroWorkersMeansHardwareConcurrency)
{
    sweep::SweepRunner runner(0);
    EXPECT_GE(runner.workers(), 1u);
}

TEST(SweepRunner, ParallelOutputIsByteIdenticalToSerial)
{
    // The tentpole guarantee: 32+ jobs over 4+ workers produce
    // exactly the bytes the --jobs 1 run produces.
    const std::string serial = sweepJson(32, 1);
    const std::string parallel4 = sweepJson(32, 4);
    const std::string parallel8 = sweepJson(32, 8);
    EXPECT_EQ(serial, parallel4);
    EXPECT_EQ(serial, parallel8);
    // And the document is non-trivial.
    EXPECT_NE(serial.find("\"num_jobs\": 32"), std::string::npos);
    EXPECT_NE(serial.find("\"name\": \"job31\""), std::string::npos);
}

TEST(SweepRunner, WallClockStaysOutOfDeterministicPayload)
{
    // Host-side timing (WallTimer) is measured per job for operator
    // feedback, but it is host-dependent and must never leak into
    // the ehpsim-sweep-v1 document — that is what keeps --jobs 1
    // and --jobs N byte-identical.
    auto runner = makeRunner(4, 2);
    const auto results = runner.run();
    for (const auto &res : results) {
        EXPECT_GE(res.wall_s, 0.0);
        EXPECT_EQ(res.output.find("wall_s"), std::string::npos);
    }
    EXPECT_GE(sweep::SweepRunner::totalJobSeconds(results), 0.0);
    std::ostringstream oss;
    sweep::SweepRunner::dumpJson(oss, "timing", results);
    const std::string doc = oss.str();
    EXPECT_EQ(doc.find("wall_s"), std::string::npos);
    EXPECT_EQ(doc.find("elapsed"), std::string::npos);
}

TEST(SweepRunner, RepeatedRunsAreStable)
{
    auto runner = makeRunner(8, 4);
    std::ostringstream a, b;
    sweep::SweepRunner::dumpJson(a, "stress", runner.run());
    sweep::SweepRunner::dumpJson(b, "stress", runner.run());
    EXPECT_EQ(a.str(), b.str());
}
