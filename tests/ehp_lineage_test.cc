/**
 * @file
 * Tests spanning the EHP lineage: the EHPv3 and EHPv4 concept
 * configurations versus MI300A (paper Secs. II, III, V.F).
 */

#include <gtest/gtest.h>

#include "soc/floorplan_builder.hh"
#include "soc/package.hh"

using namespace ehpsim;
using namespace ehpsim::soc;

TEST(EhpLineage, Ehpv3Composition)
{
    const auto cfg = ehpv3Config();
    // Eight GPU chiplets : four CCDs — the 2:1 ratio of Sec. V.F.
    EXPECT_EQ(cfg.totalXcds(), 8u);
    EXPECT_EQ(cfg.totalCcds(), 4u);
    EXPECT_EQ(cfg.totalXcds(), 2 * cfg.totalCcds());
    // Same 8 HBM stacks as MI300A (Sec. V.F).
    EXPECT_EQ(cfg.totalStacks(), mi300aConfig().totalStacks());
}

TEST(EhpLineage, Ehpv4KeepsTheRatioToo)
{
    const auto cfg = ehpv4Config();
    EXPECT_EQ(cfg.totalXcds(), 2u);
    EXPECT_EQ(cfg.totalCcds(), 2u);     // 2 big GPU dies : 2 CCDs
}

TEST(EhpLineage, Ehpv3PackageBuilds)
{
    SimObject root(nullptr, "root");
    Package pkg(&root, "ehpv3", ehpv3Config());
    EXPECT_EQ(pkg.numXcds(), 8u);
    EXPECT_EQ(pkg.numCcds(), 4u);
    const auto r =
        pkg.memAccessFrom(pkg.xcdNode(0), 0, 4096, 256, false);
    EXPECT_GT(r.complete, 0u);
}

TEST(EhpLineage, InterposerLinksAreTheEhpv3Bottleneck)
{
    // Sec. V.F: "even EHPv3's organic substrate-based links between
    // the active interposers would have posed bandwidth and power
    // challenges" versus MI300A's USR.
    const auto v3 = ehpv3Config();
    const auto m300 = mi300aConfig();
    EXPECT_LT(v3.iod_link.bandwidth, m300.iod_link.bandwidth / 10);
    EXPECT_GT(v3.iod_link.energy_pj_per_byte,
              m300.iod_link.energy_pj_per_byte);
}

TEST(EhpLineage, CrossPackageBandwidthImprovesDownTheLineage)
{
    SimObject root(nullptr, "root");
    Package v3(&root, "v3", ehpv3Config());
    Package m300(&root, "m300", mi300aConfig());

    auto remote_bw = [](Package &pkg) {
        const unsigned far = pkg.config().totalStacks() - 1;
        Tick worst = 0;
        std::uint64_t moved = 0;
        for (Addr a = 0; a < (32u << 20) && moved < (2u << 20);
             a += 4096) {
            if (pkg.memMap().stackOf(a) != far)
                continue;
            for (Addr o = 0; o < 4096; o += 256) {
                worst = std::max(
                    worst, pkg.memAccessFrom(pkg.xcdNode(0), 0,
                                             a + o, 256, false)
                               .complete);
            }
            moved += 4096;
        }
        return static_cast<double>(moved) / secondsFromTicks(worst);
    };
    EXPECT_GT(remote_bw(m300), 3.0 * remote_bw(v3));
}

TEST(EhpLineage, Mi300aUnifiesWhatEhpv3Split)
{
    // EHPv3 needed two active interposer types; MI300A uses one IOD
    // design mirrored/rotated. Structurally: every MI300A IOD hosts
    // the same interface superset, while EHPv3's CPU and GPU slots
    // differ.
    const auto v3 = ehpv3Config();
    bool v3_uniform = true;
    for (std::size_t i = 1; i < v3.iods.size(); ++i) {
        if (v3.iods[i].num_xcds != v3.iods[0].num_xcds ||
            v3.iods[i].num_hbm_stacks != v3.iods[0].num_hbm_stacks) {
            v3_uniform = false;
        }
    }
    EXPECT_FALSE(v3_uniform);

    // MI300X shows the modular swap: same IODs, all-XCD population.
    const auto x = mi300xConfig();
    for (std::size_t i = 1; i < x.iods.size(); ++i) {
        EXPECT_EQ(x.iods[i].num_xcds, x.iods[0].num_xcds);
        EXPECT_EQ(x.iods[i].num_hbm_stacks,
                  x.iods[0].num_hbm_stacks);
    }
}

TEST(EhpLineage, Ehpv3FloorplanBuilds)
{
    const auto plan = buildPackageFloorplan(ehpv3Config());
    EXPECT_TRUE(plan.overlapFree());
    EXPECT_NE(plan.find("xcd7"), nullptr);
    EXPECT_NE(plan.find("ccd3"), nullptr);
    EXPECT_NE(plan.find("hbm7"), nullptr);
}

TEST(EhpLineage, EventRunOnEhpv3Works)
{
    SimObject root(nullptr, "root");
    Package pkg(&root, "ehpv3", ehpv3Config());
    // Dispatch through a unified partition over all 8 GPU chiplets.
    auto *part = pkg.unifiedPartition();
    EXPECT_EQ(part->numXcds(), 8u);
    hsa::AqlPacket pkt;
    pkt.grid_workgroups = 64;
    pkt.work.flops = 128 * 1000;
    pkt.work.dtype = gpu::DataType::fp32;
    pkt.work.pipe = gpu::Pipe::vector;
    pkt.work.bytes_read = 4096;
    pkt.read_stride = 4096;
    const auto res = part->dispatch(0, pkt);
    EXPECT_GT(res.complete, 0u);
    EXPECT_EQ(res.sync_messages, 7u);
}
