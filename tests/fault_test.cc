/**
 * @file
 * Tests for the fault-injection subsystem: plan validation and
 * parsing, CU harvesting, link kill/derate with rerouting around
 * dead links, retry/backoff on transient chunk errors, HBM channel
 * blackout with interleave remap, and byte-identical fault sweeps
 * across worker counts.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "comm/comm_group.hh"
#include "fault/fault_injector.hh"
#include "fault/fault_plan.hh"
#include "gpu/xcd.hh"
#include "mem/hbm_subsystem.hh"
#include "soc/node_topology.hh"
#include "sweep/sweep_runner.hh"

using namespace ehpsim;
using namespace ehpsim::comm;

namespace
{

class FlatMemory : public mem::MemDevice
{
  public:
    FlatMemory(SimObject *parent, Tick latency)
        : mem::MemDevice(parent, "flat"), latency_(latency)
    {}

    mem::AccessResult
    access(Tick when, Addr, std::uint64_t, bool) override
    {
        return {when + latency_, true, 0};
    }

  private:
    Tick latency_;
};

/** Fine chunking keeps pipeline fill/drain small vs. total time. */
CommParams
fineGrained()
{
    CommParams p;
    p.chunk_bytes = 1 * MiB;
    return p;
}

/** Fig. 18b octo node with a comm group over its eight sockets. */
struct OctoComm
{
    SimObject root{nullptr, "root"};
    std::unique_ptr<soc::NodeTopology> node;
    EventQueue eq;
    std::unique_ptr<CommGroup> group;

    explicit OctoComm(const CommParams &params = fineGrained())
        : node(soc::NodeTopology::mi300xOctoNode(&root))
    {
        group = std::make_unique<CommGroup>(
            node.get(), "comm", node->network(), node->deviceRanks(),
            &eq, params);
    }
};

/** Small two-stack HBM config so blackout tests stay fast. */
mem::HbmSubsystemParams
smallHbm()
{
    mem::HbmSubsystemParams p;
    p.num_stacks = 2;
    p.channels_per_stack = 4;
    p.capacity_bytes = 1ull << 30;
    p.enable_infinity_cache = false;
    return p;
}

} // anonymous namespace

// ---------------------------------------------------------------------
// FaultPlan validation and parsing
// ---------------------------------------------------------------------

TEST(FaultPlan, ValidateRejectsBadValues)
{
    fault::FaultPlan plan;
    plan.validate();

    plan.chunk_error_rate = 1.5;
    EXPECT_THROW(plan.validate(), std::runtime_error);
    plan.chunk_error_rate = -0.1;
    EXPECT_THROW(plan.validate(), std::runtime_error);
    plan.chunk_error_rate = 0.0;

    plan.link_faults.push_back({"a", "a", 0, 0.0});
    EXPECT_THROW(plan.validate(), std::runtime_error);
    plan.link_faults[0] = {"a", "b", 0, 1.0};
    EXPECT_THROW(plan.validate(), std::runtime_error);
    plan.link_faults[0] = {"a", "b", 0, 0.5};
    plan.validate();
}

TEST(FaultPlan, ParseLinkFaultSpecs)
{
    auto f = fault::parseLinkFault("mi300x0:mi300x1@5000000");
    EXPECT_EQ(f.node_a, "mi300x0");
    EXPECT_EQ(f.node_b, "mi300x1");
    EXPECT_EQ(f.at, 5'000'000u);
    EXPECT_DOUBLE_EQ(f.derate, 0.0);

    f = fault::parseLinkFault("a:b@123*0.5");
    EXPECT_EQ(f.at, 123u);
    EXPECT_DOUBLE_EQ(f.derate, 0.5);

    EXPECT_THROW(fault::parseLinkFault("nope"), std::runtime_error);
    EXPECT_THROW(fault::parseLinkFault("a:b@xyz"),
                 std::runtime_error);
    EXPECT_THROW(fault::parseLinkFault(":b@1"), std::runtime_error);
    EXPECT_THROW(fault::parseLinkFault("a:b@"), std::runtime_error);
}

TEST(FaultPlan, DescribeSummarizesThePlan)
{
    fault::FaultPlan plan;
    plan.seed = 7;
    plan.chunk_error_rate = 0.25;
    plan.active_cus = 32;
    plan.link_faults.push_back({"a", "b", 9, 0.0});
    const std::string s = plan.describe();
    EXPECT_NE(s.find("seed=7"), std::string::npos);
    EXPECT_NE(s.find("active_cus=32"), std::string::npos);
    EXPECT_NE(s.find("link_faults=1"), std::string::npos);
}

// ---------------------------------------------------------------------
// CU harvesting beyond stock 38-of-40
// ---------------------------------------------------------------------

TEST(CuHarvest, SweepsPeakFlopsDownToTwentyEight)
{
    SimObject root(nullptr, "root");
    FlatMemory memory(&root, 1000);

    gpu::XcdParams stock = gpu::cdna3XcdParams();
    gpu::Xcd ref(&root, "ref", stock, &memory);
    const double stock_flops =
        ref.peakFlops(gpu::Pipe::vector, gpu::DataType::fp32);

    gpu::XcdParams p = gpu::cdna3XcdParams();
    fault::applyCuHarvest(p, 28);
    gpu::Xcd harvested(&root, "harvested", p, &memory);
    EXPECT_EQ(harvested.numActiveCus(), 28u);
    EXPECT_DOUBLE_EQ(
        harvested.peakFlops(gpu::Pipe::vector, gpu::DataType::fp32),
        stock_flops * 28.0 / 38.0);
}

TEST(CuHarvest, RejectsZeroAndOverPhysical)
{
    gpu::XcdParams p = gpu::cdna3XcdParams();
    EXPECT_THROW(fault::applyCuHarvest(p, 0), std::runtime_error);
    EXPECT_THROW(fault::applyCuHarvest(p, 41), std::runtime_error);

    SimObject root(nullptr, "root");
    FlatMemory memory(&root, 1000);
    p.active_cus = 0;
    EXPECT_THROW(gpu::Xcd(&root, "xcd", p, &memory),
                 std::runtime_error);
}

// ---------------------------------------------------------------------
// Link kill / derate and rerouting
// ---------------------------------------------------------------------

TEST(FaultReroute, OctoLinkKillMidAllReduceDegradesButCompletes)
{
    const std::uint64_t bytes = 64 * MiB;
    double base_bw = 0;
    Tick base_finish = 0;
    {
        OctoComm c;
        auto op = c.group->allReduce(0, bytes, Algorithm::direct);
        c.group->waitAll();
        base_bw = op->algoBandwidth();
        base_finish = op->finishTick();
    }
    ASSERT_GT(base_bw, 0.0);

    OctoComm c;
    fault::FaultPlan plan;
    plan.seed = 42;
    plan.chunk_error_rate = 0.02;
    plan.link_faults.push_back(
        {"mi300x0", "mi300x1", base_finish / 4, 0.0});
    fault::FaultInjector inj(c.node.get(), "inj", plan, &c.eq);
    inj.attachNetwork(c.node->network());
    inj.attachCommGroup(c.group.get());
    inj.arm();

    auto op = c.group->allReduce(0, bytes, Algorithm::direct);
    c.group->waitAll();
    ASSERT_TRUE(op->done());

    fabric::Network *net = c.node->network();
    const auto r0 = c.node->nodeId(0);
    const auto r1 = c.node->nodeId(1);
    EXPECT_DOUBLE_EQ(net->links_killed.value(), 1.0);
    EXPECT_FALSE(net->linkAlive(r0, r1));
    EXPECT_TRUE(net->reachable(r0, r1));
    // The dead x16 forces a two-hop detour through a third socket.
    EXPECT_EQ(net->hopCount(r0, r1), 2u);
    EXPECT_GT(net->reroutes.value(), 0.0);

    // Transient chunk errors were retried, never dropped.
    EXPECT_GT(inj.chunk_faults.value(), 0.0);
    EXPECT_DOUBLE_EQ(c.group->chunk_retries.value(),
                     inj.chunk_faults.value());
    EXPECT_GT(c.group->retry_wait_ticks.value(), 0.0);

    // Degraded, not dead: the op finished with measurably lower
    // achieved bandwidth than the healthy node.
    EXPECT_LT(op->algoBandwidth(), 0.995 * base_bw);
}

TEST(FaultReroute, PartitioningTheFabricFatalsWithBothNames)
{
    SimObject root(nullptr, "root");
    fabric::Network net(&root, "net");
    const auto a = net.addNode("a", fabric::NodeKind::device);
    const auto b = net.addNode("b", fabric::NodeKind::device);
    const auto c = net.addNode("c", fabric::NodeKind::device);
    net.connect(a, b, fabric::serdesIfLinkParams());
    net.connect(b, c, fabric::serdesIfLinkParams());
    EXPECT_TRUE(net.reachable(a, c));

    net.killLink(b, c);
    EXPECT_FALSE(net.reachable(a, c));
    EXPECT_TRUE(net.reachable(a, b));
    try {
        net.send(0, a, c, 1 * MiB);
        FAIL() << "send to a partitioned node must fatal";
    } catch (const std::runtime_error &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("'c'"), std::string::npos) << msg;
        EXPECT_NE(msg.find("'a'"), std::string::npos) << msg;
        EXPECT_NE(msg.find("partitioned"), std::string::npos) << msg;
    }
}

TEST(FaultReroute, KillAndDerateValidation)
{
    SimObject root(nullptr, "root");
    fabric::Network net(&root, "net");
    const auto a = net.addNode("a", fabric::NodeKind::device);
    const auto b = net.addNode("b", fabric::NodeKind::device);
    const auto c = net.addNode("c", fabric::NodeKind::device);
    net.connect(a, b, fabric::serdesIfLinkParams());

    EXPECT_THROW(net.killLink(a, c), std::runtime_error);
    EXPECT_THROW(net.derateLink(a, b, 0.0), std::runtime_error);
    EXPECT_THROW(net.derateLink(a, b, 1.5), std::runtime_error);

    net.killLink(a, b);
    EXPECT_THROW(net.killLink(a, b), std::runtime_error);
    EXPECT_THROW(net.derateLink(a, b, 0.5), std::runtime_error);
}

TEST(FaultDerate, HalvedBandwidthDoublesSerialization)
{
    auto run = [](double factor) {
        SimObject root(nullptr, "root");
        fabric::Network net(&root, "net");
        const auto a = net.addNode("a", fabric::NodeKind::device);
        const auto b = net.addNode("b", fabric::NodeKind::device);
        net.connect(a, b, fabric::serdesIfLinkParams());
        if (factor < 1.0) {
            net.derateLink(a, b, factor);
            EXPECT_DOUBLE_EQ(net.links_derated.value(), 1.0);
            EXPECT_DOUBLE_EQ(net.link(a, b)->derateFactor(), factor);
        }
        return static_cast<double>(net.send(0, a, b, 64 * MiB)
                                       .arrival);
    };
    const double full = run(1.0);
    const double half = run(0.5);
    // Serialization dominates the 30 ns propagation at 64 MiB.
    EXPECT_GT(half, 1.9 * full);
    EXPECT_LT(half, 2.1 * full);
}

// ---------------------------------------------------------------------
// Retry / timeout / exponential backoff
// ---------------------------------------------------------------------

TEST(FaultRetry, BackoffGrowsExponentially)
{
    SimObject root(nullptr, "root");
    auto node = soc::NodeTopology::mi300aQuadNode(&root);
    EventQueue eq;
    CommParams p = fineGrained();
    p.retry_timeout = 1000;
    p.backoff_base = 2.0;
    CommGroup group(node.get(), "comm", node->network(),
                    node->deviceRanks(), &eq, p);
    EXPECT_EQ(group.backoffTicks(1), 1000u);
    EXPECT_EQ(group.backoffTicks(2), 2000u);
    EXPECT_EQ(group.backoffTicks(4), 8000u);
}

TEST(FaultRetry, BackoffSaturatesInsteadOfOverflowing)
{
    // Regression: retry_timeout * backoff_base^(attempt-1) used to
    // be cast to Tick unchecked; past 2^63 that double -> unsigned
    // conversion is undefined behavior. Deep retry policies must
    // clamp at maxBackoff and stay monotone.
    SimObject root(nullptr, "root");
    auto node = soc::NodeTopology::mi300aQuadNode(&root);
    EventQueue eq;
    CommParams p = fineGrained();
    p.retry_timeout = 1'000'000'000;    // 1 ms base
    p.backoff_base = 10.0;
    p.max_retries = 64;                 // 1 ms * 10^63 >> Tick range
    CommGroup group(node.get(), "comm", node->network(),
                    node->deviceRanks(), &eq, p);
    EXPECT_EQ(group.backoffTicks(1), 1'000'000'000u);
    EXPECT_EQ(group.backoffTicks(2), 10'000'000'000u);
    EXPECT_EQ(group.backoffTicks(65), CommGroup::maxBackoff);
    EXPECT_EQ(group.backoffTicks(1000), CommGroup::maxBackoff);
    Tick prev = 0;
    for (unsigned a = 1; a <= 80; ++a) {
        const Tick b = group.backoffTicks(a);
        EXPECT_GE(b, prev) << "attempt " << a;
        EXPECT_LE(b, CommGroup::maxBackoff) << "attempt " << a;
        prev = b;
    }
}

TEST(FaultRetry, RejectsBadRetryParams)
{
    SimObject root(nullptr, "root");
    auto node = soc::NodeTopology::mi300aQuadNode(&root);
    EventQueue eq;
    CommParams p = fineGrained();
    p.retry_timeout = 0;
    EXPECT_THROW(CommGroup(node.get(), "c1", node->network(),
                           node->deviceRanks(), &eq, p),
                 std::runtime_error);
    p = fineGrained();
    p.backoff_base = 0.5;
    EXPECT_THROW(CommGroup(node.get(), "c2", node->network(),
                           node->deviceRanks(), &eq, p),
                 std::runtime_error);
}

TEST(FaultRetry, FirstAttemptFailuresRetryAndComplete)
{
    SimObject root(nullptr, "root");
    auto node = soc::NodeTopology::mi300aQuadNode(&root);
    EventQueue eq;
    CommParams p = fineGrained();
    p.retry_timeout = 5000;
    CommGroup group(node.get(), "comm", node->network(),
                    node->deviceRanks(), &eq, p);
    // Every chunk fails exactly its first attempt.
    group.setChunkFaultHook([](const CommGroup::ChunkAttempt &a) {
        return a.attempt == 1;
    });
    auto op = group.sendRecv(0, 0, 1, 4 * MiB);
    group.waitAll();
    ASSERT_TRUE(op->done());

    // 4 MiB in 1 MiB chunks = 4 tasks, each retried once.
    EXPECT_DOUBLE_EQ(group.chunk_retries.value(), 4.0);
    EXPECT_DOUBLE_EQ(group.retry_wait_ticks.value(), 4.0 * 5000.0);
    EXPECT_EQ(group.retry_latency.count(), 4u);
    EXPECT_DOUBLE_EQ(group.retry_latency.mean(), 5000.0);
    // The whole op is delayed by at least one backoff.
    EXPECT_GE(op->finishTick(), 5000u);
}

TEST(FaultRetry, ExhaustionFatalsWithNodeNames)
{
    SimObject root(nullptr, "root");
    auto node = soc::NodeTopology::mi300aQuadNode(&root);
    EventQueue eq;
    CommParams p = fineGrained();
    p.max_retries = 2;
    p.retry_timeout = 100;
    CommGroup group(node.get(), "comm", node->network(),
                    node->deviceRanks(), &eq, p);
    group.setChunkFaultHook([](const CommGroup::ChunkAttempt &) {
        return true;    // the link never recovers
    });
    group.sendRecv(0, 0, 1, 1 * MiB);
    try {
        group.waitAll();
        FAIL() << "exhausting max_retries must fatal";
    } catch (const std::runtime_error &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("max_retries"), std::string::npos) << msg;
        EXPECT_NE(msg.find("mi300a0"), std::string::npos) << msg;
        EXPECT_NE(msg.find("mi300a1"), std::string::npos) << msg;
    }
}

// ---------------------------------------------------------------------
// HBM channel blackout
// ---------------------------------------------------------------------

TEST(HbmBlackout, RemapsTrafficAndDegradesPeak)
{
    SimObject root(nullptr, "root");
    mem::HbmSubsystem hbm(&root, "hbm", smallHbm());
    const double stock_peak = hbm.peakHbmBandwidth();
    ASSERT_EQ(hbm.numChannels(), 8u);

    hbm.blackoutChannel(1);
    EXPECT_EQ(hbm.liveChannels(), 7u);
    EXPECT_FALSE(hbm.channelAlive(1));
    EXPECT_TRUE(hbm.channelAlive(0));
    EXPECT_DOUBLE_EQ(hbm.peakHbmBandwidth(), stock_peak * 7.0 / 8.0);
    EXPECT_DOUBLE_EQ(hbm.channels_dark.value(), 1.0);
    EXPECT_DOUBLE_EQ(hbm.degraded_peak_gbps.value(),
                     hbm.peakHbmBandwidth() / 1e9);

    // Stream stripes across many pages: everything that interleaved
    // onto the dark channel lands on a live stand-in instead.
    for (Addr a = 0; a < (64ull << 12); a += 256)
        hbm.access(0, a, 256, false);
    EXPECT_GT(hbm.remapped_accesses.value(), 0.0);
}

TEST(HbmBlackout, Validation)
{
    SimObject root(nullptr, "root");
    mem::HbmSubsystemParams p = smallHbm();
    p.num_stacks = 1;
    p.channels_per_stack = 2;
    mem::HbmSubsystem hbm(&root, "hbm", p);

    EXPECT_THROW(hbm.blackoutChannel(5), std::runtime_error);
    hbm.blackoutChannel(0);
    EXPECT_THROW(hbm.blackoutChannel(0), std::runtime_error);
    // The last live channel must stay up.
    EXPECT_THROW(hbm.blackoutChannel(1), std::runtime_error);
}

// ---------------------------------------------------------------------
// Injector wiring
// ---------------------------------------------------------------------

TEST(FaultInjector, ArmValidatesAttachments)
{
    SimObject root(nullptr, "root");
    EventQueue eq;

    fault::FaultPlan with_link;
    with_link.link_faults.push_back({"a", "b", 0, 0.0});
    fault::FaultInjector inj(&root, "inj", with_link, &eq);
    EXPECT_THROW(inj.arm(), std::runtime_error);

    fault::FaultPlan with_rate;
    with_rate.chunk_error_rate = 0.5;
    fault::FaultInjector inj2(&root, "inj2", with_rate, &eq);
    EXPECT_THROW(inj2.arm(), std::runtime_error);

    fault::FaultInjector inj3(&root, "inj3", fault::FaultPlan{}, &eq);
    inj3.arm();
    EXPECT_THROW(inj3.arm(), std::runtime_error);
}

TEST(FaultInjector, ChannelBlackoutFiresAtItsTick)
{
    SimObject root(nullptr, "root");
    EventQueue eq;
    mem::HbmSubsystem hbm(&root, "hbm", smallHbm());

    fault::FaultPlan plan;
    plan.channel_faults.push_back({3, 1000});
    fault::FaultInjector inj(&root, "inj", plan, &eq);
    inj.attachHbm(&hbm);
    inj.arm();

    EXPECT_TRUE(hbm.channelAlive(3));
    while (eq.step()) {
    }
    EXPECT_FALSE(hbm.channelAlive(3));
    EXPECT_DOUBLE_EQ(inj.channels_blacked_out.value(), 1.0);
    EXPECT_DOUBLE_EQ(inj.faults_injected.value(), 1.0);
    EXPECT_EQ(eq.curTick(), 1000u);
}

// ---------------------------------------------------------------------
// Determinism: fault sweeps under a worker pool
// ---------------------------------------------------------------------

namespace
{

/**
 * A fault-rate x algorithm sweep on the quad node, every job with
 * the same plan seed and a mid-stream link kill. The serialized
 * output covers op timing, retry counters, and the full network
 * stat tree, so any nondeterminism in the retry/backoff or reroute
 * path shows up as a byte diff.
 */
std::string
runFaultSweep(unsigned jobs)
{
    sweep::SweepRunner runner(jobs);
    const double rates[] = {0.0, 0.01, 0.05};
    for (const Algorithm algo :
         {Algorithm::ring, Algorithm::direct}) {
        for (const double rate : rates) {
            const std::string name = std::string("fault/") +
                                     algorithmName(algo) + "/" +
                                     std::to_string(rate);
            runner.addJob(name, [algo, rate](json::JsonWriter &jw) {
                SimObject root(nullptr, "root");
                auto node = soc::NodeTopology::mi300aQuadNode(&root);
                EventQueue eq;
                CommGroup group(node.get(), "comm", node->network(),
                                node->deviceRanks(), &eq,
                                fineGrained());

                fault::FaultPlan plan;
                plan.seed = 1234;
                plan.chunk_error_rate = rate;
                plan.link_faults.push_back(
                    {"mi300a0", "mi300a1", 50'000'000, 0.0});
                fault::FaultInjector inj(node.get(), "inj", plan,
                                         &eq);
                inj.attachNetwork(node->network());
                inj.attachCommGroup(&group);
                inj.arm();

                auto op = group.allReduce(0, 16 * MiB, algo);
                group.waitAll();

                jw.beginObject();
                jw.kv("algorithm", algorithmName(op->algorithm()));
                jw.kv("rate", rate);
                jw.kv("finish_ticks",
                      static_cast<double>(op->finishTick()));
                jw.kv("algbw_gbps", op->algoBandwidth() / 1e9);
                jw.kv("chunk_retries", group.chunk_retries.value());
                jw.kv("faults_injected",
                      inj.faults_injected.value());
                jw.key("net");
                node->network()->dumpJsonStats(jw);
                jw.endObject();
            });
        }
    }
    const auto results = runner.run();
    std::ostringstream os;
    sweep::SweepRunner::dumpJson(os, "fault_sweep", results);
    return os.str();
}

} // anonymous namespace

TEST(FaultSweep, SameSeedIsByteIdenticalAcrossWorkersAndRuns)
{
    const std::string serial = runFaultSweep(1);
    const std::string parallel = runFaultSweep(8);
    const std::string again = runFaultSweep(8);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, parallel);
    EXPECT_EQ(parallel, again);
}
