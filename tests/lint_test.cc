/**
 * Tests for ehpsim-lint, the in-tree determinism/hygiene linter.
 *
 * Three layers:
 *   1. fixture tests  — every rule has a known-bad snippet under
 *      tests/lint_fixtures/ that must be flagged, and an allow()-
 *      suppressed twin that must pass clean;
 *   2. unit tests     — lintContent() on inline snippets pins down
 *      suppression scoping and rule filtering;
 *   3. self-check     — the real tree (src/, bench/, examples/)
 *      lints clean, so the CI gate can never rot silently.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "lint/lint.hh"

using namespace ehpsim::lint;

namespace {

std::string
fixture(const std::string &name)
{
    return std::string(EHPSIM_LINT_FIXTURES) + "/" + name;
}

std::vector<Finding>
lintFixture(const std::string &name)
{
    return lintFiles({fixture(name)}, Options{});
}

/** Count findings for one rule, asserting no other rule fired. */
std::size_t
countOnly(const std::vector<Finding> &findings, Rule rule)
{
    for (const Finding &f : findings)
        EXPECT_EQ(ruleName(f.rule), ruleName(rule)) << toString(f);
    return findings.size();
}

} // namespace

// ---------------------------------------------------------------------------
// 1. Fixtures: one bad + one allowed snippet per rule.
// ---------------------------------------------------------------------------

TEST(LintFixtures, WallClockBadIsFlagged)
{
    const auto findings = lintFixture("wall_clock_bad.cc");
    EXPECT_EQ(countOnly(findings, Rule::wallClock), 3u);
}

TEST(LintFixtures, WallClockAllowedIsClean)
{
    EXPECT_TRUE(lintFixture("wall_clock_allowed.cc").empty());
}

TEST(LintFixtures, RawRandBadIsFlagged)
{
    const auto findings = lintFixture("raw_rand_bad.cc");
    EXPECT_EQ(countOnly(findings, Rule::rawRand), 3u);
}

TEST(LintFixtures, RawRandAllowedIsClean)
{
    EXPECT_TRUE(lintFixture("raw_rand_allowed.cc").empty());
}

TEST(LintFixtures, UnorderedIterBadIsFlagged)
{
    const auto findings = lintFixture("unordered_iter_bad.cc");
    // One range-for and one explicit .begin() walk.
    EXPECT_EQ(countOnly(findings, Rule::unorderedIter), 2u);
}

TEST(LintFixtures, UnorderedIterAllowedIsClean)
{
    // The suppressed loop passes, and the sortedKeys() traversal is
    // recognised as deterministic rather than flagged via its argument.
    EXPECT_TRUE(lintFixture("unordered_iter_allowed.cc").empty());
}

TEST(LintFixtures, EventNewBadIsFlagged)
{
    const auto findings = lintFixture("event_new_bad.cc");
    // One raw new plus two raw deletes (one through a parameter whose
    // pointee type, not name, marks it as an event).
    EXPECT_EQ(countOnly(findings, Rule::eventNew), 3u);
}

TEST(LintFixtures, EventNewAllowedIsClean)
{
    EXPECT_TRUE(lintFixture("event_new_allowed.cc").empty());
}

TEST(LintFixtures, EventAllocBadIsFlagged)
{
    const auto findings = lintFixture("event_alloc_bad.cc");
    std::size_t alloc = 0, raw = 0;
    for (const Finding &f : findings) {
        if (f.rule == Rule::eventAlloc)
            ++alloc;
        else if (f.rule == Rule::eventNew)
            ++raw;
        else
            ADD_FAILURE() << toString(f);
    }
    // One new LambdaEvent plus two capturing scheduleLambda calls;
    // the capture-less lambda and the array index stay clean. The
    // same new also trips event-new (complementary guidance).
    EXPECT_EQ(alloc, 3u);
    EXPECT_EQ(raw, 1u);
}

TEST(LintFixtures, EventAllocAllowedIsClean)
{
    EXPECT_TRUE(lintFixture("event_alloc_allowed.cc").empty());
}

TEST(LintFixtures, DupStatBadIsFlagged)
{
    const auto findings = lintFixture("dup_stat_bad.cc");
    ASSERT_EQ(countOnly(findings, Rule::dupStat), 1u);
    // The finding lands on the second registration and names the first.
    EXPECT_EQ(findings[0].line, 12);
    EXPECT_NE(findings[0].message.find("line 11"), std::string::npos);
}

TEST(LintFixtures, DupStatAllowedIsClean)
{
    // Also covers the same stat name reused across different groups.
    EXPECT_TRUE(lintFixture("dup_stat_allowed.cc").empty());
}

TEST(LintFixtures, FloatBadIsFlagged)
{
    const auto findings = lintFixture("float_bad.cc");
    EXPECT_EQ(countOnly(findings, Rule::floatArith), 2u);
}

TEST(LintFixtures, FloatAllowedIsClean)
{
    EXPECT_TRUE(lintFixture("float_allowed.cc").empty());
}

TEST(LintFixtures, ChunkAllocBadIsFlagged)
{
    // The fixture lives under a comm/ subdirectory on purpose: the
    // rule only applies to collective-construction paths.
    const auto findings = lintFixture("comm/chunk_alloc_bad.cc");
    EXPECT_EQ(countOnly(findings, Rule::chunkAlloc), 2u);
}

TEST(LintFixtures, ChunkAllocAllowedIsClean)
{
    EXPECT_TRUE(lintFixture("comm/chunk_alloc_allowed.cc").empty());
}

TEST(LintFixtures, StaticStateBadIsFlagged)
{
    const auto findings = lintFixture("static_state_bad.cc");
    // A file-scope static, a thread_local, and a function-local static.
    EXPECT_EQ(countOnly(findings, Rule::staticState), 3u);
}

TEST(LintFixtures, StaticStateAllowedIsClean)
{
    // const/constexpr statics and static functions are immutable or
    // stateless; the one mutable registry carries a documented allow().
    EXPECT_TRUE(lintFixture("static_state_allowed.cc").empty());
}

TEST(LintFixtures, PointerKeyBadIsFlagged)
{
    const auto findings = lintFixture("pointer_key_bad.cc");
    // map, set, and multimap each keyed by a raw pointer.
    EXPECT_EQ(countOnly(findings, Rule::pointerKey), 3u);
}

TEST(LintFixtures, PointerKeyAllowedIsClean)
{
    // Pointer *values* are fine, unordered containers hash rather than
    // order, and the id-comparator set carries a documented allow().
    EXPECT_TRUE(lintFixture("pointer_key_allowed.cc").empty());
}

TEST(LintFixtures, SnapshotPairBadIsFlagged)
{
    const auto findings = lintFixture("snapshot_pair_bad.cc");
    // snapshot-without-restore and restore-without-snapshot.
    EXPECT_EQ(countOnly(findings, Rule::snapshotPair), 2u);
}

TEST(LintFixtures, SnapshotPairAllowedIsClean)
{
    // Both halves declared, neither declared, and a documented
    // one-sided reader behind an allow().
    EXPECT_TRUE(lintFixture("snapshot_pair_allowed.cc").empty());
}

// ---------------------------------------------------------------------------
// 2. Unit tests on inline snippets.
// ---------------------------------------------------------------------------

TEST(LintUnit, SuppressionCoversOwnAndNextLineOnly)
{
    const std::string src =
        "// ehpsim-lint: allow(float-arith)\n"
        "float covered;\n"
        "float not_covered;\n";
    const auto findings = lintContent("inline.cc", src, Options{});
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].line, 3);
}

TEST(LintUnit, AllowFileSuppressesEverywhere)
{
    const std::string src =
        "// ehpsim-lint: allow-file(float-arith)\n"
        "float a;\n"
        "\n"
        "float b;\n";
    EXPECT_TRUE(lintContent("inline.cc", src, Options{}).empty());
}

TEST(LintUnit, SuppressionIsRuleSpecific)
{
    // An allow() for one rule must not silence another on the same line.
    const std::string src =
        "// ehpsim-lint: allow(wall-clock)\n"
        "float leaks_through;\n";
    const auto findings = lintContent("inline.cc", src, Options{});
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(ruleName(findings[0].rule), std::string("float-arith"));
}

TEST(LintUnit, CommentsAndStringsAreNotCode)
{
    const std::string src =
        "// float in a comment, rand() too\n"
        "/* std::random_device inside a block comment */\n"
        "const char *doc = \"float rand() steady_clock\";\n";
    EXPECT_TRUE(lintContent("inline.cc", src, Options{}).empty());
}

TEST(LintUnit, RuleFilterRestrictsOutput)
{
    const std::string src = "float f = rand();\n";
    Options opts;
    opts.only_rules = {Rule::rawRand};
    const auto findings = lintContent("inline.cc", src, opts);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(ruleName(findings[0].rule), std::string("raw-rand"));
}

TEST(LintUnit, DefaultWhitelistExemptsWallTimer)
{
    const std::string src = "auto t = std::chrono::steady_clock::now();\n";
    // The sanctioned wall-clock shim is exempt...
    EXPECT_TRUE(
        lintContent("src/sim/wall_timer.cc", src, Options{}).empty());
    // ...but only by path, and only while the whitelist is on.
    EXPECT_EQ(lintContent("src/sweep/sweep_runner.cc", src, Options{}).size(),
              1u);
    Options strict;
    strict.default_whitelist = false;
    EXPECT_EQ(lintContent("src/sim/wall_timer.cc", src, strict).size(), 1u);
}

TEST(LintUnit, DefaultWhitelistExemptsEventQueueAlloc)
{
    // The queue's own scheduleLambda() implementation and its
    // oversized-callable fallback live in sim/event_queue.
    const std::string src =
        "void f(Q &eq) { eq.scheduleLambda(1, [&eq] {}); }\n";
    EXPECT_TRUE(
        lintContent("src/sim/event_queue.cc", src, Options{}).empty());
    const auto findings =
        lintContent("src/comm/comm_group.cc", src, Options{});
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(ruleName(findings[0].rule), std::string("event-alloc"));
}

TEST(LintUnit, ChunkAllocAppliesOnlyUnderCommPaths)
{
    // A per-iteration vector is ordinary C++ in most of the tree;
    // only the collective-construction hot path bans it.
    const std::string src =
        "void f(unsigned n) {\n"
        "    for (unsigned i = 0; i < n; ++i) {\n"
        "        std::vector<int> deps = {1, 2};\n"
        "        (void)deps;\n"
        "    }\n"
        "}\n";
    const auto findings =
        lintContent("src/comm/comm_group.cc", src, Options{});
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(ruleName(findings[0].rule), std::string("chunk-alloc"));
    EXPECT_TRUE(lintContent("src/mem/hbm_stack.cc", src, Options{}).empty());
}

TEST(LintUnit, CrossFileUnorderedDeclIsSeen)
{
    // Member declared in a header, iterated in a .cc: pass 1 builds a
    // global name table, so linting both files together connects them.
    const auto findings = lintFiles(
        {fixture("cross_file_decl.hh"), fixture("cross_file_iter.cc")},
        Options{});
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(ruleName(findings[0].rule), std::string("unordered-iter"));
    EXPECT_NE(findings[0].file.find("cross_file_iter.cc"),
              std::string::npos);
    // Linting the .cc alone must NOT fire: the declaration is unseen.
    EXPECT_TRUE(lintFixture("cross_file_iter.cc").empty());
}

TEST(LintUnit, StaticStateSkipsConstAndFunctions)
{
    const std::string src =
        "static const int k = 1;\n"
        "static constexpr int k2 = 2;\n"
        "static int helper(int);\n"
        "static int counter = 0;\n";
    const auto findings = lintContent("inline.cc", src, Options{});
    ASSERT_EQ(countOnly(findings, Rule::staticState), 1u);
    EXPECT_EQ(findings[0].line, 4);
    EXPECT_NE(findings[0].message.find("counter"), std::string::npos);
}

TEST(LintUnit, StaticStateWhitelistsTrackerImpl)
{
    // The tracker's thread-local current-pointer is the sanctioned
    // exception: it is the mechanism that *detects* shared state.
    const std::string src = "thread_local int tl_cur = 0;\n";
    EXPECT_TRUE(
        lintContent("src/sim/access_tracker.cc", src, Options{}).empty());
    EXPECT_EQ(lintContent("src/comm/comm_group.cc", src, Options{}).size(),
              1u);
    Options strict;
    strict.default_whitelist = false;
    EXPECT_EQ(
        lintContent("src/sim/access_tracker.cc", src, strict).size(), 1u);
}

TEST(LintUnit, PointerKeyIgnoresValuesAndUnordered)
{
    const std::string src =
        "std::map<int, Node *> values_ok;\n"
        "std::unordered_map<Node *, int> hashed_ok;\n"
        "std::map<Node *, int> flagged;\n";
    const auto findings = lintContent("inline.cc", src, Options{});
    ASSERT_EQ(countOnly(findings, Rule::pointerKey), 1u);
    EXPECT_EQ(findings[0].line, 3);
}

TEST(LintUnit, PointerKeySeesMultiLineTemplates)
{
    // The key spans a line break; the finding lands on the container
    // keyword's line and the message stays single-line.
    const std::string src =
        "std::map<\n"
        "    Node *,\n"
        "    int> spread;\n";
    const auto findings = lintContent("inline.cc", src, Options{});
    ASSERT_EQ(countOnly(findings, Rule::pointerKey), 1u);
    EXPECT_EQ(findings[0].message.find('\n'), std::string::npos);
}

TEST(LintUnit, ParseRuleRoundTrips)
{
    for (const Rule r : allRules()) {
        Rule parsed{};
        ASSERT_TRUE(parseRule(ruleName(r), parsed)) << ruleName(r);
        EXPECT_EQ(ruleName(parsed), ruleName(r));
    }
    Rule unused{};
    EXPECT_FALSE(parseRule("no-such-rule", unused));
}

// ---------------------------------------------------------------------------
// 3. Self-check: the shipping tree lints clean, via the library and
//    via the installed binary's exit code (the exact CI invocation).
// ---------------------------------------------------------------------------

TEST(LintTree, WholeTreeLintsClean)
{
    std::vector<std::string> files;
    std::string error;
    const std::string root(EHPSIM_SOURCE_DIR);
    ASSERT_TRUE(listSources(
        {root + "/src", root + "/bench", root + "/examples"}, files, error))
        << error;
    ASSERT_GT(files.size(), 100u) << "source walk looks truncated";

    const auto findings = lintFiles(files, Options{});
    for (const Finding &f : findings)
        ADD_FAILURE() << toString(f);
    EXPECT_TRUE(findings.empty());
}

TEST(LintCli, ExitCodesMatchContract)
{
    const std::string bin(EHPSIM_LINT_BIN);
    const std::string quiet = " > /dev/null 2>&1";

    const int clean = std::system(
        (bin + " " + fixture("float_allowed.cc") + quiet).c_str());
    const int dirty = std::system(
        (bin + " " + fixture("float_bad.cc") + quiet).c_str());
    const int usage = std::system((bin + " --rule bogus" + quiet).c_str());

    ASSERT_NE(clean, -1);
    EXPECT_EQ(WEXITSTATUS(clean), 0);
    EXPECT_EQ(WEXITSTATUS(dirty), 1);
    EXPECT_EQ(WEXITSTATUS(usage), 2);
}

// ---------------------------------------------------------------------------
// 4. JSON output: the machine-readable twin of the text form.
// ---------------------------------------------------------------------------

TEST(LintJson, EmptyFindingsProduceEmptyDocument)
{
    const std::string doc = toJson({});
    EXPECT_NE(doc.find("\"schema\": \"ehpsim-lint-v1\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"findings\": []"), std::string::npos);
    EXPECT_NE(doc.find("\"count\": 0"), std::string::npos);
}

TEST(LintJson, FindingsCarryFileLineRuleMessage)
{
    const auto findings =
        lintContent("inline.cc", "static int g = 0;\n", Options{});
    ASSERT_EQ(findings.size(), 1u);
    const std::string doc = toJson(findings);
    EXPECT_NE(doc.find("\"file\": \"inline.cc\""), std::string::npos);
    EXPECT_NE(doc.find("\"line\": 1"), std::string::npos);
    EXPECT_NE(doc.find("\"rule\": \"static-state\""), std::string::npos);
    EXPECT_NE(doc.find("\"count\": 1"), std::string::npos);
}

TEST(LintJson, EscapesQuotesAndBackslashes)
{
    Finding f;
    f.rule = Rule::wallClock;
    f.file = "dir\\sub\\file.cc";
    f.line = 7;
    f.message = "uses \"now\"\nacross lines";
    const std::string doc = toJson({f});
    EXPECT_NE(doc.find("dir\\\\sub\\\\file.cc"), std::string::npos);
    EXPECT_NE(doc.find("\\\"now\\\""), std::string::npos);
    EXPECT_NE(doc.find("\\n"), std::string::npos);
    EXPECT_EQ(doc.find("\"now\"\n"), std::string::npos);
}

TEST(LintJson, CliFormatJsonMatchesContract)
{
    const std::string bin(EHPSIM_LINT_BIN);
    const std::string out = "/tmp/ehpsim_lint_json_test.json";

    const int dirty = std::system(
        (bin + " --format=json " + fixture("pointer_key_bad.cc") + " > " +
         out + " 2> /dev/null")
            .c_str());
    ASSERT_NE(dirty, -1);
    EXPECT_EQ(WEXITSTATUS(dirty), 1);

    std::string doc;
    {
        std::FILE *fp = std::fopen(out.c_str(), "rb");
        ASSERT_NE(fp, nullptr);
        char buf[4096];
        std::size_t n;
        while ((n = std::fread(buf, 1, sizeof buf, fp)) > 0)
            doc.append(buf, n);
        std::fclose(fp);
    }
    EXPECT_NE(doc.find("\"schema\": \"ehpsim-lint-v1\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"rule\": \"pointer-key\""), std::string::npos);
    EXPECT_NE(doc.find("\"count\": 3"), std::string::npos);

    const int bogus = std::system(
        (bin + " --format=yaml " + fixture("pointer_key_bad.cc") +
         " > /dev/null 2>&1")
            .c_str());
    ASSERT_NE(bogus, -1);
    EXPECT_EQ(WEXITSTATUS(bogus), 2);
}
