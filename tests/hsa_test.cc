/**
 * @file
 * Tests for HSA queues and the cooperative multi-XCD dispatch
 * protocol (paper Fig. 13).
 */

#include <gtest/gtest.h>

#include "hsa/partition.hh"
#include "hsa/queue.hh"
#include "hsa/shim.hh"

using namespace ehpsim;
using namespace ehpsim::hsa;

namespace
{

class FlatMemory : public mem::MemDevice
{
  public:
    FlatMemory(SimObject *parent, Tick latency)
        : mem::MemDevice(parent, "flat"), latency_(latency)
    {}

    mem::AccessResult
    access(Tick when, Addr, std::uint64_t, bool) override
    {
        return {when + latency_, true, 0};
    }

  private:
    Tick latency_;
};

/** Two-XCD partition over a tiny fabric, like one MI300A IOD pair. */
struct PartitionFixture
{
    SimObject root{nullptr, "root"};
    FlatMemory memory{&root, 10'000};
    fabric::Network net{&root, "net"};
    fabric::NodeId iod0, iod1, x0, x1;
    std::unique_ptr<gpu::Xcd> xcd0, xcd1;
    coherence::ScopeController scopes{&root, "scopes"};
    std::unique_ptr<Partition> part;

    PartitionFixture()
    {
        iod0 = net.addNode("iod0", fabric::NodeKind::iod);
        iod1 = net.addNode("iod1", fabric::NodeKind::iod);
        net.connect(iod0, iod1, fabric::usrLinkParams());
        x0 = net.addNode("x0", fabric::NodeKind::xcd);
        x1 = net.addNode("x1", fabric::NodeKind::xcd);
        net.connect(x0, iod0, fabric::onDieLinkParams());
        net.connect(x1, iod1, fabric::onDieLinkParams());

        gpu::XcdParams xp = gpu::cdna3XcdParams();
        xcd0 = std::make_unique<gpu::Xcd>(&root, "xcd0", xp, &memory);
        xcd1 = std::make_unique<gpu::Xcd>(&root, "xcd1", xp, &memory);
        scopes.addXcdCaches(xcd0->l1Caches(), xcd0->l2());
        scopes.addXcdCaches(xcd1->l1Caches(), xcd1->l2());
        part = std::make_unique<Partition>(
            &root, "part",
            std::vector<gpu::Xcd *>{xcd0.get(), xcd1.get()}, &scopes,
            &net, std::vector<fabric::NodeId>{x0, x1}, iod0);
    }

    AqlPacket
    makePacket(std::uint64_t grid, Signal *sig = nullptr)
    {
        AqlPacket pkt;
        pkt.grid_workgroups = grid;
        pkt.work.flops = 256 * 1000;
        pkt.work.dtype = gpu::DataType::fp32;
        pkt.work.pipe = gpu::Pipe::vector;
        pkt.work.inst_bytes = 0;
        pkt.completion = sig;
        return pkt;
    }
};

} // anonymous namespace

TEST(UserQueue, RingSemantics)
{
    SimObject root(nullptr, "root");
    UserQueue q(&root, "q", 4);
    AqlPacket pkt;
    EXPECT_TRUE(q.empty());
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(q.submit(pkt));
    EXPECT_TRUE(q.full());
    EXPECT_FALSE(q.submit(pkt));            // overrun rejected
    EXPECT_DOUBLE_EQ(q.packets_dropped.value(), 1.0);
    EXPECT_EQ(q.doorbell(), 4u);

    EXPECT_TRUE(q.pop().has_value());
    EXPECT_TRUE(q.submit(pkt));             // space again
    int drained = 0;
    while (q.pop())
        ++drained;
    EXPECT_EQ(drained, 4);
    EXPECT_TRUE(q.empty());
}

TEST(UserQueue, IndicesMonotonic)
{
    SimObject root(nullptr, "root");
    UserQueue q(&root, "q", 2);
    AqlPacket pkt;
    for (int i = 0; i < 10; ++i) {
        q.submit(pkt);
        q.pop();
    }
    EXPECT_EQ(q.writeIndex(), 10u);
    EXPECT_EQ(q.readIndex(), 10u);
}

TEST(Partition, DispatchUsesAllXcds)
{
    PartitionFixture f;
    Signal sig;
    const auto pkt = f.makePacket(76, &sig);   // 2 x 38 workgroups
    const auto res = f.part->dispatch(0, pkt);
    EXPECT_EQ(res.workgroups, 76u);
    EXPECT_EQ(res.per_xcd_workgroups.size(), 2u);
    EXPECT_EQ(res.per_xcd_workgroups[0], 38u);
    EXPECT_EQ(res.per_xcd_workgroups[1], 38u);
    EXPECT_TRUE(sig.done());
    EXPECT_EQ(sig.completed_at, res.complete);
}

TEST(Partition, ScopeIdsDefaultToIdentity)
{
    PartitionFixture f;
    // The fixture passes no scope_ids: they default to 0..n-1.
    ASSERT_EQ(f.part->scopeIds().size(), 2u);
    EXPECT_EQ(f.part->scopeIds()[0], 0u);
    EXPECT_EQ(f.part->scopeIds()[1], 1u);

    // Explicit ids pass through untouched (e.g. a partition over
    // the second half of a controller's XCDs).
    Partition swapped(&f.root, "swapped",
                      {f.xcd0.get(), f.xcd1.get()}, &f.scopes, &f.net,
                      {f.x0, f.x1}, f.iod0, {1, 0});
    ASSERT_EQ(swapped.scopeIds().size(), 2u);
    EXPECT_EQ(swapped.scopeIds()[0], 1u);
    EXPECT_EQ(swapped.scopeIds()[1], 0u);

    // A partially specified list cannot silently misalign.
    EXPECT_THROW(Partition(&f.root, "bad",
                           {f.xcd0.get(), f.xcd1.get()}, &f.scopes,
                           &f.net, {f.x0, f.x1}, f.iod0, {0}),
                 std::runtime_error);
}

TEST(Partition, SyncMessagesAreNminus1HighPriority)
{
    PartitionFixture f;
    const auto res = f.part->dispatch(0, f.makePacket(16));
    EXPECT_EQ(res.sync_messages, 1u);       // 2 XCDs -> 1 message
    // The message used the high-priority channel on some link.
    double hp = 0;
    for (auto *l : f.net.allLinks())
        hp += l->hp_transfers.value();
    EXPECT_GE(hp, 1.0);
}

TEST(Partition, BlockedPolicyAssignsContiguous)
{
    PartitionFixture f;
    f.part->setPolicy(DistributionPolicy::blocked);
    const auto res = f.part->dispatch(0, f.makePacket(10));
    EXPECT_EQ(res.per_xcd_workgroups[0], 5u);
    EXPECT_EQ(res.per_xcd_workgroups[1], 5u);
}

TEST(Partition, RoundRobinBalancesOddGrids)
{
    PartitionFixture f;
    const auto res = f.part->dispatch(0, f.makePacket(7));
    EXPECT_EQ(res.per_xcd_workgroups[0], 4u);
    EXPECT_EQ(res.per_xcd_workgroups[1], 3u);
}

TEST(Partition, MultiXcdFasterThanSingle)
{
    PartitionFixture both;
    const auto two = both.part->dispatch(0, both.makePacket(152));

    PartitionFixture single;
    Partition solo(&single.root, "solo", {single.xcd0.get()},
                   &single.scopes, &single.net, {single.x0},
                   single.iod0, {0});
    const auto one = solo.dispatch(0, single.makePacket(152));
    EXPECT_LT(two.complete, one.complete);
}

TEST(Partition, ProcessQueueHonorsBarriers)
{
    PartitionFixture f;
    UserQueue q(&f.root, "q", 16);
    Signal s1, s2;
    auto p1 = f.makePacket(8, &s1);
    p1.barrier = true;
    auto p2 = f.makePacket(8, &s2);
    q.submit(p1);
    q.submit(p2);
    const Tick done = f.part->processQueue(0, q);
    EXPECT_TRUE(s1.done());
    EXPECT_TRUE(s2.done());
    // With the barrier, packet 2 started after packet 1 completed.
    EXPECT_GT(s2.completed_at, s1.completed_at);
    EXPECT_EQ(done, s2.completed_at);
    EXPECT_TRUE(q.empty());
}

TEST(Partition, PeakFlopsSumsXcds)
{
    PartitionFixture f;
    const double one =
        f.xcd0->peakFlops(gpu::Pipe::vector, gpu::DataType::fp32);
    EXPECT_DOUBLE_EQ(
        f.part->peakFlops(gpu::Pipe::vector, gpu::DataType::fp32),
        2 * one);
    EXPECT_EQ(f.part->totalCus(), 76u);
}

TEST(Partition, EmptyPartitionFatal)
{
    SimObject root(nullptr, "root");
    EXPECT_THROW(Partition(&root, "p", {}, nullptr),
                 std::runtime_error);
}

TEST(LibraryShim, SmallProblemsStayOnCpu)
{
    // MI300A-ish rates.
    LibraryShim shim(1.4e12, 5.3e12, 60e12, 4.5e12, 5e-6);
    const auto small = shim.decide(1'000'000, 1'000'000);
    EXPECT_EQ(small.target, ShimTarget::cpu);
    const auto big = shim.decide(1ull << 40, 1ull << 34);
    EXPECT_EQ(big.target, ShimTarget::gpu);
}

TEST(Partition, BarrierAndWaitsForSignals)
{
    PartitionFixture f;
    Signal s1, s2, done;
    const auto r1 = f.part->dispatch(0, f.makePacket(8, &s1));
    const auto r2 = f.part->dispatch(0, f.makePacket(8, &s2));

    AqlPacket barrier;
    barrier.type = PacketType::barrierAnd;
    barrier.wait_signals = {&s1, &s2};
    barrier.completion = &done;
    const auto rb = f.part->dispatch(0, barrier);
    EXPECT_EQ(rb.complete, std::max(r1.complete, r2.complete));
    EXPECT_TRUE(done.done());
    EXPECT_EQ(rb.workgroups, 0u);
}

TEST(Partition, BarrierAndOnPendingSignalFatal)
{
    PartitionFixture f;
    Signal pending;     // never decremented
    AqlPacket barrier;
    barrier.type = PacketType::barrierAnd;
    barrier.wait_signals = {&pending};
    EXPECT_THROW(f.part->dispatch(0, barrier), std::runtime_error);
}

TEST(Partition, BarrierAndIgnoresNullSignals)
{
    PartitionFixture f;
    AqlPacket barrier;
    barrier.type = PacketType::barrierAnd;
    barrier.wait_signals = {nullptr};
    const auto rb = f.part->dispatch(1234, barrier);
    EXPECT_EQ(rb.complete, 1234u);
}

TEST(LibraryShim, CrossoverIsMonotonic)
{
    LibraryShim shim(1.4e12, 5.3e12, 60e12, 4.5e12, 5e-6);
    const auto cross = shim.crossoverFlops(10.0);
    EXPECT_GT(cross, 1000u);
    // Just below the crossover: CPU; just above: GPU.
    const auto below = shim.decide(
        cross - 1, static_cast<std::uint64_t>((cross - 1) / 10.0));
    const auto above = shim.decide(
        cross + 1, static_cast<std::uint64_t>((cross + 1) / 10.0));
    EXPECT_EQ(below.target, ShimTarget::cpu);
    EXPECT_EQ(above.target, ShimTarget::gpu);
}
