/**
 * Tests for ehpsim-race, the dynamic determinism race detector.
 *
 * The AccessTracker class itself always compiles (only the hooks are
 * EHPSIM_RACE-gated), so most of this file drives it directly:
 * conflict semantics, waiver policy, the partition dependency data,
 * and byte-determinism of the report across SweepRunner worker
 * counts. A final section, compiled only under -DEHPSIM_RACE=ON,
 * runs real EventQueue dispatch through the instrumentation macros.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "sim/access_tracker.hh"
#include "sim/event_queue.hh"
#include "sim/json.hh"
#include "sim/sim_object.hh"
#include "sweep/sweep_runner.hh"

using namespace ehpsim;
using race::AccessTracker;

namespace {

std::string
dump(const AccessTracker &t)
{
    std::ostringstream os;
    json::JsonWriter jw(os);
    t.dumpJson(jw);
    return os.str();
}

/** One recorded access inside its own event dispatch. */
void
access(AccessTracker &t, Tick when, std::uint64_t seq,
       const char *cell, bool write, int line = 10)
{
    t.beginEvent(when, 0, seq);
    t.record(nullptr, cell, write, "src/x/y.cc", line);
    t.endEvent();
}

} // namespace

// ---------------------------------------------------------------------------
// Order conflicts: same (tick, priority), different events, same cell.
// ---------------------------------------------------------------------------

TEST(RaceOrder, WriteWriteSameWindowIsFlagged)
{
    AccessTracker t;
    access(t, 100, 1, "grp.cell", true, 11);
    access(t, 100, 2, "grp.cell", true, 22);
    EXPECT_EQ(t.conflictCount(), 1u);
    EXPECT_EQ(t.unwaivedCount(), 1u);

    const std::string doc = dump(t);
    EXPECT_NE(doc.find("\"kind\": \"order\""), std::string::npos);
    EXPECT_NE(doc.find("\"cell\": \"grp.cell\""), std::string::npos);
    // Both sites carry repo-relative provenance and access marks.
    EXPECT_NE(doc.find("src/x/y.cc:11[w]"), std::string::npos);
    EXPECT_NE(doc.find("src/x/y.cc:22[w]"), std::string::npos);
}

TEST(RaceOrder, ReadWriteSameWindowIsFlagged)
{
    AccessTracker t;
    access(t, 100, 1, "grp.cell", false);
    access(t, 100, 2, "grp.cell", true);
    EXPECT_EQ(t.conflictCount(), 1u);
}

TEST(RaceOrder, ReadReadIsClean)
{
    AccessTracker t;
    access(t, 100, 1, "grp.cell", false);
    access(t, 100, 2, "grp.cell", false);
    EXPECT_EQ(t.conflictCount(), 0u);
}

TEST(RaceOrder, DifferentTicksAreClean)
{
    AccessTracker t;
    access(t, 100, 1, "grp.cell", true);
    access(t, 200, 2, "grp.cell", true);
    EXPECT_EQ(t.conflictCount(), 0u);
}

TEST(RaceOrder, DifferentPrioritiesAreClean)
{
    AccessTracker t;
    t.beginEvent(100, 0, 1);
    t.record(nullptr, "grp.cell", true, "src/x.cc", 1);
    t.endEvent();
    t.beginEvent(100, 1, 2);
    t.record(nullptr, "grp.cell", true, "src/x.cc", 2);
    t.endEvent();
    EXPECT_EQ(t.conflictCount(), 0u);
}

TEST(RaceOrder, SameEventTouchingTwiceIsClean)
{
    // One event may read and write its own state freely; only
    // *cross-event* ordering within a batch is a hazard.
    AccessTracker t;
    t.beginEvent(100, 0, 1);
    t.record(nullptr, "grp.cell", false, "src/x.cc", 1);
    t.record(nullptr, "grp.cell", true, "src/x.cc", 2);
    t.endEvent();
    EXPECT_EQ(t.conflictCount(), 0u);
}

TEST(RaceOrder, DifferentCellsAreClean)
{
    AccessTracker t;
    access(t, 100, 1, "grp.a", true);
    access(t, 100, 2, "grp.b", true);
    EXPECT_EQ(t.conflictCount(), 0u);
}

TEST(RaceOrder, AccessesOutsideEventsAreIgnored)
{
    // Topology building and construction run before the event loop;
    // they cannot race and must not pollute the report.
    AccessTracker t;
    t.record(nullptr, "grp.cell", true, "src/x.cc", 1);
    t.record(nullptr, "grp.cell", true, "src/x.cc", 2);
    EXPECT_EQ(t.accessCount(), 0u);
    EXPECT_EQ(t.conflictCount(), 0u);
}

TEST(RaceOrder, RepeatedConflictDeduplicatesWithCount)
{
    // The same pair of sites colliding in window after window is one
    // finding with a hit count, not a flood of duplicates — and the
    // discovery order within a window must not split the pair.
    AccessTracker t;
    for (int round = 1; round <= 3; ++round) {
        const bool flip = round % 2 == 0;
        access(t, Tick(100 * round), 1, "grp.cell", true,
               flip ? 22 : 11);
        access(t, Tick(100 * round), 2, "grp.cell", true,
               flip ? 11 : 22);
    }
    EXPECT_EQ(t.conflictCount(), 1u);
    EXPECT_NE(dump(t).find("\"count\": 3"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Waivers: reviewed findings stay in the report but stop gating.
// ---------------------------------------------------------------------------

TEST(RaceWaiver, SubstringMatchMovesFindingToWaived)
{
    AccessTracker t;
    access(t, 100, 1, "comm.stats.ops", true);
    access(t, 100, 2, "comm.stats.ops", true);
    access(t, 100, 3, "comm.order", true);
    access(t, 100, 4, "comm.order", true);
    ASSERT_EQ(t.conflictCount(), 2u);
    EXPECT_EQ(t.unwaivedCount(), 2u);

    t.waive(".stats", "scalar accumulation commutes");
    EXPECT_EQ(t.unwaivedCount(), 1u);
    EXPECT_EQ(t.waivedCount(), 1u);

    const std::string doc = dump(t);
    EXPECT_NE(doc.find("\"rationale\": \"scalar accumulation commutes\""),
              std::string::npos);
    // The waiver table reports how often each pattern fired, so dead
    // waivers are visible and removable.
    EXPECT_NE(doc.find("\"uses\": 1"), std::string::npos);
}

TEST(RaceWaiver, StandardWaiversCoverTheProvenPatterns)
{
    AccessTracker t;
    race::addStandardWaivers(t);
    access(t, 100, 1, "comm.op3.state", true);
    access(t, 100, 2, "comm.op3.state", true);
    access(t, 100, 3, "net.l.occupancy", true);
    access(t, 100, 4, "net.l.occupancy", true);
    EXPECT_EQ(t.conflictCount(), 2u);
    EXPECT_EQ(t.unwaivedCount(), 0u);
}

// ---------------------------------------------------------------------------
// Partition dependency data: domains, flows, lookahead.
// ---------------------------------------------------------------------------

TEST(RacePartition, LinkLatencyMinMergesAndNormalizes)
{
    AccessTracker t;
    t.recordPartitionLink(2, 1, 500);
    t.recordPartitionLink(1, 2, 300);  // reversed pair, lower latency
    t.recordPartitionLink(1, 2, 900);
    ASSERT_EQ(t.lookahead().size(), 1u);
    const auto it = t.lookahead().find({1, 2});
    ASSERT_NE(it, t.lookahead().end());
    EXPECT_EQ(it->second, 300u);
}

TEST(RacePartition, SelfAndUnpartitionedLinksAreIgnored)
{
    AccessTracker t;
    t.recordPartitionLink(3, 3, 100);
    t.recordPartitionLink(-1, 2, 100);
    t.recordPartitionFlow(4, 4);
    t.recordPartitionFlow(-1, 0);
    EXPECT_TRUE(t.lookahead().empty());
    EXPECT_TRUE(t.flows().empty());
}

TEST(RacePartition, FlowsCountDirectedPairs)
{
    AccessTracker t;
    t.recordPartitionFlow(0, 1);
    t.recordPartitionFlow(0, 1);
    t.recordPartitionFlow(1, 0);
    ASSERT_EQ(t.flows().size(), 2u);
    EXPECT_EQ(t.flows().at({0, 1}), 2u);
    EXPECT_EQ(t.flows().at({1, 0}), 1u);
}

TEST(RacePartition, EventTouchingTwoDomainsIsFlagged)
{
    SimObject left(nullptr, "left");
    SimObject right(nullptr, "right");
    left.setRaceDomain(0);
    right.setRaceDomain(1);

    AccessTracker t;
    t.beginEvent(50, 0, 1);
    t.record(&left, "state", true, "src/x.cc", 1);
    t.record(&right, "state", true, "src/x.cc", 2);
    t.endEvent();

    ASSERT_EQ(t.conflictCount(), 1u);
    const std::string doc = dump(t);
    EXPECT_NE(doc.find("\"kind\": \"partition\""), std::string::npos);
    EXPECT_NE(doc.find("domain 0->1"), std::string::npos);
    // The crossing also registers as a flow edge.
    EXPECT_EQ(t.flows().at({0, 1}), 1u);
}

TEST(RacePartition, SameDomainEventIsClean)
{
    SimObject parent(nullptr, "socket0");
    SimObject childA(&parent, "a");
    SimObject childB(&parent, "b");
    parent.setRaceDomain(3);

    AccessTracker t;
    t.beginEvent(50, 0, 1);
    // Children inherit the nearest ancestor's domain, so touching
    // both is intra-partition.
    t.record(&childA, "state", true, "src/x.cc", 1);
    t.record(&childB, "state", true, "src/x.cc", 2);
    t.endEvent();
    EXPECT_EQ(t.conflictCount(), 0u);
    EXPECT_EQ(childA.raceDomain(), 3);
    EXPECT_EQ(childB.raceDomain(), 3);
}

// ---------------------------------------------------------------------------
// Report determinism: byte-identical across SweepRunner worker counts.
// ---------------------------------------------------------------------------

namespace {

/** A deterministic mixed scenario: order conflicts, a waived cell,
 *  domain crossings, flows, and lookahead entries. */
void
runScenario(AccessTracker &t, unsigned salt)
{
    race::addStandardWaivers(t);
    t.recordPartitionLink(0, 1, 30'000 + salt);
    t.recordPartitionLink(1, 2, 20'000 + salt);
    for (unsigned i = 0; i < 8; ++i) {
        const Tick when = 100 * (1 + i % 3);
        access(t, when, 2 * i, "hot.cell", true,
               int(10 + i % 2));
        access(t, when, 2 * i + 1, "hot.cell", true,
               int(20 + i % 2));
        access(t, when, 2 * i + 1, "net.stats.bytes", true, 30);
        access(t, when, 2 * i, "net.stats.bytes", true, 31);
        t.recordPartitionFlow(int(i % 2), int(1 + i % 2));
    }
}

std::string
sweepReport(unsigned workers)
{
    constexpr std::size_t jobs = 8;
    sweep::SweepRunner runner(workers);
    for (std::size_t j = 0; j < jobs; ++j) {
        runner.addJob("race" + std::to_string(j),
                      [j](json::JsonWriter &jw) {
                          AccessTracker t;
                          runScenario(t, unsigned(j));
                          t.dumpJson(jw);
                      });
    }
    const auto results = runner.run();
    std::ostringstream os;
    sweep::SweepRunner::dumpJson(os, "race_determinism", results);
    return os.str();
}

} // namespace

TEST(RaceDeterminism, ReportIsByteIdenticalAcrossWorkerCounts)
{
    const std::string serial = sweepReport(1);
    const std::string wide = sweepReport(8);
    ASSERT_FALSE(serial.empty());
    EXPECT_EQ(serial, wide);
    // The scenario is genuinely dirty: conflicts were found, some
    // waived, and the lookahead table is non-empty.
    EXPECT_NE(serial.find("\"kind\": \"order\""), std::string::npos);
    EXPECT_NE(serial.find("\"min_link_latency\""), std::string::npos);
}

TEST(RaceDeterminism, RepeatedRunsAreByteIdentical)
{
    AccessTracker a, b;
    runScenario(a, 0);
    runScenario(b, 0);
    EXPECT_EQ(dump(a), dump(b));
}

// ---------------------------------------------------------------------------
// End-to-end through the EventQueue hooks (instrumented builds only).
// ---------------------------------------------------------------------------

#ifdef EHPSIM_RACE

TEST(RaceEndToEnd, BatchedSameTickWritesAreFlagged)
{
    EventQueue eq;
    SimObject root(nullptr, "root", &eq);
    AccessTracker t;
    race::TrackerScope scope(&t);

    // Two independent events land at the same tick and both mutate
    // the same cell: exactly the hazard batched dispatch must not
    // reorder.
    eq.scheduleLambda(100, [&root] {
        EHPSIM_TRACK_WRITE(&root, "hot");
    });
    eq.scheduleLambda(100, [&root] {
        EHPSIM_TRACK_WRITE(&root, "hot");
    });
    eq.run();

    EXPECT_EQ(t.eventCount(), 2u);
    EXPECT_EQ(t.conflictCount(), 1u);
    EXPECT_EQ(t.unwaivedCount(), 1u);
}

TEST(RaceEndToEnd, DifferentTickWritesAreClean)
{
    EventQueue eq;
    SimObject root(nullptr, "root", &eq);
    AccessTracker t;
    race::TrackerScope scope(&t);

    eq.scheduleLambda(100, [&root] {
        EHPSIM_TRACK_WRITE(&root, "hot");
    });
    eq.scheduleLambda(200, [&root] {
        EHPSIM_TRACK_WRITE(&root, "hot");
    });
    eq.run();

    EXPECT_EQ(t.eventCount(), 2u);
    EXPECT_EQ(t.conflictCount(), 0u);
}

TEST(RaceEndToEnd, MacrosIgnoreThreadsWithoutTracker)
{
    EventQueue eq;
    SimObject root(nullptr, "root", &eq);
    // No TrackerScope: the hooks must be inert, not crash.
    eq.scheduleLambda(100, [&root] {
        EHPSIM_TRACK_WRITE(&root, "hot");
    });
    eq.run();
    SUCCEED();
}

#endif // EHPSIM_RACE
