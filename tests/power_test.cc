/**
 * @file
 * Tests for the power model, the shifting governor (paper Fig. 12a),
 * and the thermal grid solver (Fig. 12b/c).
 */

#include <gtest/gtest.h>

#include "geom/floorplan.hh"
#include "power/governor.hh"
#include "power/power_model.hh"
#include "power/thermal.hh"
#include "sim/rng.hh"

using namespace ehpsim;
using namespace ehpsim::power;

TEST(PowerDistribution, ScenariosNormalized)
{
    EXPECT_NEAR(computeIntensiveDistribution().total(), 1.0, 1e-9);
    EXPECT_NEAR(memoryIntensiveDistribution().total(), 1.0, 1e-9);
}

TEST(PowerDistribution, ComputeVsMemoryShift)
{
    const auto c = computeIntensiveDistribution();
    const auto m = memoryIntensiveDistribution();
    const auto idx = [](Domain d) { return static_cast<unsigned>(d); };
    // Fig. 12a: compute-intensive puts the majority into the XCDs;
    // memory-intensive shifts power to HBM, cache, fabric, USR.
    EXPECT_GT(c.share[idx(Domain::xcd)], 0.5);
    EXPECT_GT(m.share[idx(Domain::hbm)], c.share[idx(Domain::hbm)]);
    EXPECT_GT(m.share[idx(Domain::usr)], c.share[idx(Domain::usr)]);
    EXPECT_GT(m.share[idx(Domain::fabric)],
              c.share[idx(Domain::fabric)]);
    EXPECT_LT(m.share[idx(Domain::xcd)], c.share[idx(Domain::xcd)]);
}

TEST(PowerModel, Mi300aEnvelope)
{
    SimObject root(nullptr, "root");
    auto *pm = PowerModel::makeMi300a(&root);
    EXPECT_DOUBLE_EQ(pm->tdp(), 550.0);
    EXPECT_LT(pm->idlePower(), pm->tdp());
    // The governor exists because peak exceeds TDP.
    EXPECT_GT(pm->maxPower(), pm->tdp());
    delete pm;
}

TEST(PowerModel, ComponentPowerClamps)
{
    Component c{"x", Domain::xcd, 5.0, 50.0};
    EXPECT_DOUBLE_EQ(c.powerAt(-1.0), 5.0);
    EXPECT_DOUBLE_EQ(c.powerAt(0.0), 5.0);
    EXPECT_DOUBLE_EQ(c.powerAt(0.5), 27.5);
    EXPECT_DOUBLE_EQ(c.powerAt(2.0), 50.0);
}

namespace
{

struct GovernorFixture
{
    SimObject root{nullptr, "root"};
    PowerModel *model = PowerModel::makeMi300a(&root);
    PowerGovernor gov{&root, "gov", model};

    ~GovernorFixture() { delete model; }
};

} // anonymous namespace

TEST(Governor, UncontendedDemandGranted)
{
    GovernorFixture f;
    std::vector<double> util(f.model->components().size(), 0.1);
    const auto alloc = f.gov.allocate(util);
    EXPECT_FALSE(alloc.throttled);
    EXPECT_LE(alloc.total, f.model->tdp() + 1e-9);
    for (std::size_t i = 0; i < util.size(); ++i) {
        EXPECT_NEAR(alloc.watts[i],
                    f.model->components()[i].powerAt(0.1), 1e-9);
    }
}

TEST(Governor, FullDemandThrottlesWithinBudget)
{
    GovernorFixture f;
    std::vector<double> util(f.model->components().size(), 1.0);
    const auto alloc = f.gov.allocate(util);
    EXPECT_TRUE(alloc.throttled);
    EXPECT_NEAR(alloc.total, f.model->tdp(), 0.5);
    EXPECT_GT(f.gov.throttle_events.value(), 0.0);
}

class GovernorRandom : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(GovernorRandom, InvariantsUnderRandomDemand)
{
    GovernorFixture f;
    Rng rng(GetParam());
    const auto &comps = f.model->components();
    for (int round = 0; round < 200; ++round) {
        std::vector<double> util(comps.size());
        for (auto &u : util)
            u = rng.nextDouble();
        const auto alloc = f.gov.allocate(util);
        // Budget invariant.
        EXPECT_LE(alloc.total, f.model->tdp() + 1e-6);
        double sum = 0;
        for (std::size_t i = 0; i < comps.size(); ++i) {
            // Floor and ceiling invariants.
            EXPECT_GE(alloc.watts[i], comps[i].idle_w - 1e-9);
            EXPECT_LE(alloc.watts[i], comps[i].peak_w + 1e-9);
            // Never granted more than demanded.
            EXPECT_LE(alloc.watts[i],
                      comps[i].powerAt(util[i]) + 1e-6);
            sum += alloc.watts[i];
        }
        // Conservation: total equals the sum of the parts.
        EXPECT_NEAR(sum, alloc.total, 1e-6);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GovernorRandom,
                         ::testing::Values(11, 22, 33));

TEST(Governor, ShiftsPowerBetweenScenarios)
{
    GovernorFixture f;
    const auto compute =
        f.gov.allocateForDistribution(computeIntensiveDistribution());
    const auto memory =
        f.gov.allocateForDistribution(memoryIntensiveDistribution());
    const auto cd = compute.perDomain(*f.model);
    const auto md = memory.perDomain(*f.model);
    const auto idx = [](Domain d) { return static_cast<unsigned>(d); };
    // The vertical power shift of Sec. V.D/V.E.
    EXPECT_GT(cd[idx(Domain::xcd)], md[idx(Domain::xcd)]);
    EXPECT_GT(md[idx(Domain::hbm)], cd[idx(Domain::hbm)]);
    EXPECT_GT(md[idx(Domain::usr)], cd[idx(Domain::usr)]);
    EXPECT_LE(compute.total, f.model->tdp() + 1e-6);
    EXPECT_LE(memory.total, f.model->tdp() + 1e-6);
}

// ---------------------------------------------------------------------
// Thermal
// ---------------------------------------------------------------------

namespace
{

geom::Floorplan
twoRegionPlan()
{
    geom::Floorplan fp({0, 0, 20, 20});
    fp.add("hot", {2, 2, 6, 6}, geom::RegionKind::compute);
    fp.add("cold", {12, 12, 6, 6}, geom::RegionKind::cache);
    return fp;
}

} // anonymous namespace

TEST(Thermal, NoPowerStaysAmbient)
{
    SimObject root(nullptr, "root");
    auto plan = twoRegionPlan();
    ThermalGrid grid(&root, "thermal", &plan);
    grid.solve({0.0, 0.0});
    EXPECT_NEAR(grid.maxTemperature(), 35.0, 1e-6);
}

TEST(Thermal, HotspotFollowsPower)
{
    SimObject root(nullptr, "root");
    auto plan = twoRegionPlan();
    ThermalGrid grid(&root, "thermal", &plan);
    grid.solve({100.0, 5.0});
    EXPECT_EQ(grid.hottestRegion(), "hot");
    EXPECT_GT(grid.regionTemperature("hot"),
              grid.regionTemperature("cold") + 5.0);
    grid.solve({5.0, 100.0});
    EXPECT_EQ(grid.hottestRegion(), "cold");
}

TEST(Thermal, EnergyConservationAtSteadyState)
{
    SimObject root(nullptr, "root");
    auto plan = twoRegionPlan();
    ThermalParams tp;
    tp.tolerance = 1e-7;
    ThermalGrid grid(&root, "thermal", &plan, tp);
    grid.solve({80.0, 40.0});
    EXPECT_LT(grid.conservationError(), 0.02);
}

TEST(Thermal, MorePowerMeansHigherTemperature)
{
    SimObject root(nullptr, "root");
    auto plan = twoRegionPlan();
    ThermalGrid grid(&root, "thermal", &plan);
    grid.solve({50.0, 0.0});
    const double t50 = grid.maxTemperature();
    grid.solve({100.0, 0.0});
    const double t100 = grid.maxTemperature();
    EXPECT_GT(t100, t50);
    // Linear system: doubling power doubles the rise.
    EXPECT_NEAR((t100 - 35.0) / (t50 - 35.0), 2.0, 0.05);
}

TEST(Thermal, RegionWattsMustParallelRegions)
{
    SimObject root(nullptr, "root");
    auto plan = twoRegionPlan();
    ThermalGrid grid(&root, "thermal", &plan);
    EXPECT_THROW(grid.solve({1.0}), std::runtime_error);
}

TEST(Thermal, AsciiHeatMapRenders)
{
    SimObject root(nullptr, "root");
    auto plan = twoRegionPlan();
    ThermalGrid grid(&root, "thermal", &plan);
    grid.solve({100.0, 0.0});
    const std::string map = grid.asciiHeatMap(20, 10);
    EXPECT_EQ(std::count(map.begin(), map.end(), '\n'), 10);
    // Something hot must be visible.
    EXPECT_NE(map.find_first_of(":-=+*#%@"), std::string::npos);
}
