/**
 * @file
 * Tests for the die-attach interface models (paper Secs. V.A/V.D,
 * Figs. 3, 6, 11).
 */

#include <gtest/gtest.h>

#include "geom/bonding.hh"

using namespace ehpsim;
using namespace ehpsim::geom;

TEST(Bonding, PitchesMatchPaper)
{
    // Sec. V.A: 9 um hybrid bond (V-Cache and MI300A); 35 um USR
    // microbump minimum pitch.
    EXPECT_DOUBLE_EQ(hybridBond9um().pitch_um, 9.0);
    EXPECT_DOUBLE_EQ(microbump35um().pitch_um, 35.0);
    EXPECT_GT(c4Bump130um().pitch_um, 100.0);
}

TEST(Bonding, ConnectionDensityScalesInversePitchSquared)
{
    const auto hb = hybridBond9um();
    const auto ub = microbump35um();
    const double ratio =
        hb.connectionsPerMm2() / ub.connectionsPerMm2();
    EXPECT_NEAR(ratio, (35.0 * 35.0) / (9.0 * 9.0), 1e-6);
}

TEST(Bonding, HybridBondBeatsMicrobumpBandwidthDensity)
{
    // The >10x area-bandwidth-density claim is for USR-vs-SerDes,
    // but hybrid bonding must also beat microbumps per mm^2 even at
    // a lower per-connection rate.
    EXPECT_GT(hybridBond9um().bandwidthDensityTbpsMm2(),
              3.0 * microbump35um().bandwidthDensityTbpsMm2());
}

TEST(Bonding, HybridBondThermallySuperior)
{
    // Sec. V.A: hybrid bonding has superior thermal conduction
    // versus microbump stacking — essential for compute-on-IOD.
    const double area = 70.0;   // an XCD footprint
    EXPECT_LT(hybridBond9um().thermalResistance(area),
              microbump35um().thermalResistance(area) / 3.0);
}

TEST(Bonding, PowerResistanceDropsWithArea)
{
    const auto hb = hybridBond9um();
    EXPECT_LT(hb.powerResistanceMohm(100.0, 0.5),
              hb.powerResistanceMohm(10.0, 0.5));
}

TEST(Bonding, BpvOnRdlIsLowerResistance)
{
    // Fig. 11: MI300A lands the bond-pad via on the aluminum RDL,
    // the lower-resistance path that feeds compute chiplets.
    EXPECT_LT(bpvResistanceMohm(true), bpvResistanceMohm(false));
}

TEST(Bonding, InvalidAreasFatal)
{
    EXPECT_THROW(hybridBond9um().thermalResistance(0.0),
                 std::runtime_error);
    EXPECT_THROW(hybridBond9um().powerResistanceMohm(10.0, 0.0),
                 std::runtime_error);
}

TEST(Bonding, KindNames)
{
    EXPECT_STREQ(bondKindName(BondKind::hybridBond), "hybrid_bond");
    EXPECT_STREQ(bondKindName(BondKind::microbump), "microbump");
    EXPECT_STREQ(bondKindName(BondKind::c4Bump), "c4_bump");
}

TEST(Bonding, VCacheVsMi300PowerDelivery)
{
    // The same hybrid-bond process, but MI300A's RDL landing halves
    // the per-connection delivery resistance versus the V-Cache-era
    // interface: more current per pad for the compute chiplets.
    auto vcache = hybridBond9um();
    vcache.resistance_mohm += bpvResistanceMohm(false);
    auto mi300 = hybridBond9um();
    mi300.resistance_mohm += bpvResistanceMohm(true);
    EXPECT_LT(mi300.powerResistanceMohm(70.0, 0.5),
              vcache.powerResistanceMohm(70.0, 0.5));
}
