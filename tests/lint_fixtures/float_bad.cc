// Fixture: single-precision arithmetic must be flagged (2 findings).
struct LinkModel
{
    float bandwidth_gbps_ = 128.0f;

    float
    transferSeconds(unsigned long long bytes) const
    {
        return static_cast<double>(bytes) / bandwidth_gbps_;
    }
};
