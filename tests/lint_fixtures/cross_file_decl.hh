// Fixture: declares an unordered member that cross_file_iter.cc
// iterates — exercises the linter's global two-pass name table.
#include <unordered_map>

struct RemoteDir
{
    std::unordered_map<unsigned long long, int> remote_dir_;
};
