// Fixture: the same allocating one-shots, suppressed (0 event-alloc
// findings; the event-new finding is suppressed separately).
struct Queue
{
    void schedule(void *ev, unsigned long when);
    void scheduleLambda(unsigned long when, int fn);
};

struct LambdaEvent
{
    int fn;
};

void
hotPath(Queue &eq)
{
    // ehpsim-lint: allow(event-alloc, event-new)
    eq.schedule(new LambdaEvent{1}, 10);
    eq.scheduleLambda(20, [&eq] { (void)eq; }); // ehpsim-lint: allow(event-alloc)
    // ehpsim-lint: allow(event-alloc)
    eq.scheduleLambda(30, [&eq](int) { (void)eq; });
}
