// Fixture: the same stat name registered twice in one group must be
// flagged (1 finding, reported on the second registration).
#include "sim/stats.hh"

struct CacheStats
{
    ehpsim::Scalar lookups_;
    ehpsim::Scalar hits_;

    CacheStats()
        : lookups_(this, "lookups", "probe filter lookups"),
          hits_(this, "lookups", "copy-paste slip: should be hits")
    {
    }
};
