// Fixture: immutable statics, functions, and one documented
// suppression (0 findings).
static const int k_limit = 64;
static constexpr double k_ratio = 0.5;
constexpr static unsigned k_width = 16;

static int helperFunction(int x);

static int
helperFunction(int x)
{
    return x + k_limit;
}

struct Table
{
    static const char *name() { return "table"; }
};

// Interned registry shared on purpose; jobs never mutate it after
// startup. ehpsim-lint: allow(static-state)
static int g_registry_epoch = 0;
