// Fixture: iterates a hash container declared in cross_file_decl.hh
// (1 finding, only when both files are linted together).
#include "cross_file_decl.hh"

int
countShared()
{
    int shared = 0;
    for (const auto &kv : remote_dir_)
        shared += kv.second;
    return shared;
}
