// Fixture: double-precision everywhere, plus one suppressed float
// for FFI padding (0 findings).
struct LinkModel
{
    double bandwidth_gbps_ = 128.0;
    float pad_; // ehpsim-lint: allow(float-arith)

    double
    transferSeconds(unsigned long long bytes) const
    {
        return static_cast<double>(bytes) / bandwidth_gbps_;
    }
};
