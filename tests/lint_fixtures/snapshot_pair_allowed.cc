// Fixture: snapshot-pair stays quiet when both halves are declared,
// when a class has neither (no checkpoint participation), and when
// a deliberate one-sided override carries an allow().

class FullyCheckpointed
{
  public:
    void snapshot(SnapshotWriter &w) const;
    void restore(SnapshotReader &r);

  private:
    double warmed_state = 0;
};

struct NoDynamicState
{
    int config_only = 0;
};

// A read-only inspector that consumes a checkpoint it never writes
// (the stream it reads is produced elsewhere).
// ehpsim-lint: allow(snapshot-pair)
struct CheckpointInspector
{
    void restore(SnapshotReader &r);
};
