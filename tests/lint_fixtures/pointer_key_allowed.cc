// Fixture: stable keys, pointer values, unordered pointer keys
// (hashing, not ordering), and one suppressed deterministic
// comparator (0 findings).
#include <map>
#include <set>
#include <string>
#include <unordered_set>

struct Node
{
    int id;
    std::string name;
};

std::map<int, Node *> node_by_id;
std::map<std::string, Node *> node_by_name;
std::map<std::pair<unsigned, unsigned>, int> by_pair;
std::set<int> ids;
std::unordered_set<Node *> membership_only;

struct ByNodeId
{
    bool operator()(const Node *a, const Node *b) const
    {
        return a->id < b->id;
    }
};

// Comparator orders by the stable id, not the address.
// ehpsim-lint: allow(pointer-key)
std::set<Node *, ByNodeId> ordered_by_id;
