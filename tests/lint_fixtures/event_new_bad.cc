// Fixture: raw event lifetime management must be flagged
// (3 findings: one new, two deletes).
struct RetryEvent
{
    void process();
};

void
scheduleRetry(RetryEvent *pending_event)
{
    auto *ev = new RetryEvent();
    delete ev;
    delete pending_event;
}
