// Fixture: ordered containers keyed by raw pointers must be flagged
// (3 findings).
#include <map>
#include <set>

struct Node
{
    int id;
};

std::map<Node *, int> fanout_by_node;
std::set<const Node *> visited;
std::multimap<Node *, Node *> edges;
