// Fixture: raw randomness suppressed file-wide (0 findings).
// ehpsim-lint: allow-file(raw-rand)
#include <cstdlib>
#include <random>

int
noisyDraw()
{
    std::random_device rd;
    std::mt19937 gen(rd());
    return static_cast<int>(gen()) + rand();
}
