// Fixture: mutable static / thread_local state must be flagged
// (3 findings).
static int g_job_counter = 0;

thread_local unsigned t_scratch_bytes = 0;

unsigned long long
nextSerial()
{
    static unsigned long long serial = 0;
    return ++serial;
}
