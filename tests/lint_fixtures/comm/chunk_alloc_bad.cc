// Fixture: per-iteration std::vector construction in a collective
// builder loop must be flagged (2 findings). The directory name puts
// this under a comm/ path, where the rule applies.
#include <cstdint>
#include <vector>

struct Op
{
    std::vector<std::uint32_t> tasks;
};

void
buildRing(Op &op, unsigned steps, std::uint64_t chunks)
{
    for (unsigned s = 0; s < steps; ++s) {
        std::vector<std::uint64_t> sizes(chunks, 1u);
        for (std::uint64_t c = 0; c < chunks; ++c)
            op.tasks.push_back(static_cast<std::uint32_t>(sizes[c]));
    }
    std::uint64_t c = 0;
    while (c < chunks) {
        std::vector<std::uint32_t> deps = {0u, 1u};
        op.tasks.push_back(deps[0]);
        ++c;
    }
}
