// Fixture: the sanctioned patterns stay clean (0 findings) — a
// vector declared outside the loop, references/pointers into an
// existing buffer, a non-declaration use (::iterator), and one
// suppressed per-iteration vector for a cold path.
#include <cstdint>
#include <vector>

struct Op
{
    std::vector<std::uint32_t> tasks;
};

void
buildRing(Op &op, unsigned steps, std::uint64_t chunks,
          std::vector<std::uint32_t> &scratch)
{
    std::vector<std::uint64_t> sizes(chunks, 1u); // hoisted: fine
    for (unsigned s = 0; s < steps; ++s) {
        scratch.clear(); // reused member/parameter: fine
        const std::vector<std::uint64_t> &view = sizes;
        const std::vector<std::uint64_t> *ptr = &sizes;
        std::vector<std::uint64_t>::const_iterator it = view.begin();
        for (std::uint64_t c = 0; c < chunks; ++c)
            scratch.push_back(static_cast<std::uint32_t>(*it + ptr->size()));
        // ehpsim-lint: allow(chunk-alloc)
        std::vector<std::uint32_t> cold_path_copy = scratch;
        op.tasks.push_back(cold_path_copy.front());
    }
}
