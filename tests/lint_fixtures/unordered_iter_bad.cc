// Fixture: hash-order traversal must be flagged (2 findings: the
// range-for and the explicit .begin() iterator walk).
#include <unordered_map>

struct DumpState
{
    std::unordered_map<unsigned, double> table_;

    double
    dumpJson() const
    {
        double sum = 0;
        for (const auto &kv : table_)
            sum += kv.second;
        for (auto it = table_.begin(); it != table_.end(); ++it)
            sum += it->second;
        return sum;
    }
};
