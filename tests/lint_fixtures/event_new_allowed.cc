// Fixture: the same raw event lifetimes, suppressed (0 findings).
struct RetryEvent
{
    void process();
};

void
scheduleRetry(RetryEvent *pending_event)
{
    auto *ev = new RetryEvent(); // ehpsim-lint: allow(event-new)
    delete ev;                   // ehpsim-lint: allow(event-new)
    // ehpsim-lint: allow(event-new)
    delete pending_event;
}
