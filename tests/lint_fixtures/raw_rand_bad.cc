// Fixture: raw randomness must be flagged (3 findings).
#include <cstdlib>
#include <random>

int
noisyDraw()
{
    std::random_device rd;
    std::mt19937 gen(rd());
    return static_cast<int>(gen()) + rand();
}
