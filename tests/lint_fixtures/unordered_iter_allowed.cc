// Fixture: suppressed hash-order traversal plus the sanctioned
// sortedKeys() pattern (0 findings).
#include <unordered_map>

#include "sim/ordered.hh"

struct DumpState
{
    std::unordered_map<unsigned, double> table_;

    double
    dumpJson() const
    {
        double sum = 0;
        // Order-insensitive reduction, reviewed and suppressed:
        // ehpsim-lint: allow(unordered-iter)
        for (const auto &kv : table_)
            sum += kv.second;
        // Deterministic traversal needs no suppression:
        for (const unsigned k : ehpsim::sortedKeys(table_))
            sum += table_.at(k);
        return sum;
    }
};
