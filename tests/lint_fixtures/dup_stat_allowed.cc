// Fixture: suppressed duplicate, plus the legitimate case of the
// same stat name reused across two different groups (0 findings).
#include "sim/stats.hh"

struct CacheStats
{
    ehpsim::Scalar lookups_;
    ehpsim::Scalar shadow_;

    CacheStats()
        : lookups_(this, "lookups", "probe filter lookups"),
          // ehpsim-lint: allow(dup-stat)
          shadow_(this, "lookups", "intentional shadow register")
    {
    }
};

struct LinkStats
{
    ehpsim::Scalar lookups_;

    // Same name, different group: no finding expected.
    LinkStats() : lookups_(this, "lookups", "link table lookups") {}
};
