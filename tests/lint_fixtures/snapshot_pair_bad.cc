// Fixture: snapshot-pair must flag classes overriding one half of
// the checkpoint pair. Two bad shapes: snapshot without restore,
// and restore without snapshot.

struct HalfSaved
{
    void snapshot(SnapshotWriter &w) const;
    double warmed_state = 0;
};

class HalfRestored
{
  public:
    void restore(SnapshotReader &r);

  private:
    double warmed_state = 0;
};
