// Fixture: identical wall-clock reads, each suppressed (0 findings).
#include <chrono>
#include <ctime>

double
elapsedHostSeconds()
{
    // ehpsim-lint: allow(wall-clock)
    const auto t0 = std::chrono::steady_clock::now();
    const long stamp = time(nullptr); // ehpsim-lint: allow(wall-clock)
    // ehpsim-lint: allow(wall-clock)
    return static_cast<double>(stamp) + static_cast<double>(clock());
}
