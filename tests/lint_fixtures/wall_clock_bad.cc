// Fixture: every wall-clock read here must be flagged (3 findings).
// These files exercise ehpsim-lint; they are never compiled.
#include <chrono>
#include <ctime>

double
elapsedHostSeconds()
{
    const auto t0 = std::chrono::steady_clock::now();
    const long stamp = time(nullptr);
    return static_cast<double>(stamp) + static_cast<double>(clock());
}
