// Fixture: allocating one-shot scheduling must be flagged
// (3 findings: one new LambdaEvent — which also trips event-new —
// and two capturing scheduleLambda calls; the capture-less call and
// the array index are fine).
struct Queue
{
    void schedule(void *ev, unsigned long when);
    void scheduleLambda(unsigned long when, int fn);
};

struct LambdaEvent
{
    int fn;
};

void
hotPath(Queue &eq, int *counters, unsigned long idx)
{
    eq.schedule(new LambdaEvent{1}, 10);
    eq.scheduleLambda(20, [&eq] { (void)eq; });
    eq.scheduleLambda(30, [counters, idx](int) { (void)counters; });
    eq.scheduleLambda(40, [] {});
    eq.scheduleLambda(50, counters[idx]);
}
