/**
 * @file
 * Tests for machine models and the roofline engine.
 */

#include <gtest/gtest.h>

#include "core/machine_model.hh"
#include "core/roofline.hh"
#include "sim/logging.hh"
#include "workloads/generators.hh"

using namespace ehpsim;
using namespace ehpsim::core;
using namespace ehpsim::workloads;

TEST(MachineModel, Mi300aRates)
{
    const auto m = mi300aModel();
    // 228 CUs x 256 FP32 x 1.7 GHz ~ 99.2 Tflops vector FP32.
    EXPECT_NEAR(m.gpuPeakFlops(gpu::Pipe::vector,
                               gpu::DataType::fp32) /
                    1e12,
                99.2, 0.5);
    // FP8 matrix with sparsity doubles.
    const double fp8 =
        m.gpuPeakFlops(gpu::Pipe::matrix, gpu::DataType::fp8);
    EXPECT_DOUBLE_EQ(
        m.gpuPeakFlops(gpu::Pipe::matrix, gpu::DataType::fp8, true),
        2 * fp8);
    EXPECT_TRUE(m.unified);
}

TEST(MachineModel, ExplicitOverridesWin)
{
    const auto m = baselineGpuModel();
    EXPECT_NEAR(m.gpuPeakFlops(gpu::Pipe::matrix,
                               gpu::DataType::fp16) /
                    1e12,
                989.0, 0.1);
    EXPECT_FALSE(m.unified);
}

TEST(MachineModel, EffectiveBandwidthBlends)
{
    const auto m = mi300aModel();
    const double small = m.effectiveMemBandwidth(64ull << 20);
    const double large = m.effectiveMemBandwidth(8ull << 30);
    // Cache-resident streams run at cache speed; huge ones near HBM.
    EXPECT_GT(small, m.mem_bw);
    EXPECT_LT(large, m.mem_bw);
    EXPECT_GT(large, 0.5 * m.mem_bw);
}

TEST(MachineModel, FromPackageMatchesConfig)
{
    SimObject root(nullptr, "root");
    soc::Package pkg(&root, "pkg", soc::mi300aConfig());
    const auto m = modelFromPackage(pkg);
    EXPECT_EQ(m.num_cus, 228u);
    EXPECT_NEAR(m.mem_bw / 1e12, 5.3, 0.1);
    EXPECT_TRUE(m.unified);
    EXPECT_EQ(m.cache_capacity, 256ull << 20);
}

TEST(Roofline, TriadTimeMatchesBandwidth)
{
    auto m = mi300aModel();
    m.cache_capacity = 0;       // pure HBM stream
    RooflineEngine eng(m);
    const std::uint64_t n = 1ull << 30;     // 8 GiB per array
    const auto rep = eng.run(streamTriad(n));
    const double bytes = 3.0 * 8.0 * static_cast<double>(n);
    const double expect = bytes / (m.mem_bw * m.mem_efficiency);
    EXPECT_NEAR(rep.total_s, expect, expect * 0.05);
}

TEST(Roofline, GemmHitsComputeRoof)
{
    const auto m = mi300aModel();
    RooflineEngine eng(m);
    const auto w = gemm(8192, 8192, 8192, gpu::DataType::fp16,
                        gpu::Pipe::matrix);
    const auto rep = eng.run(w);
    const double peak = m.gpuPeakFlops(gpu::Pipe::matrix,
                                       gpu::DataType::fp16) *
                        m.gpu_efficiency;
    const double expect =
        static_cast<double>(w.totalGpuFlops()) / peak;
    EXPECT_NEAR(rep.gpuSeconds(), expect, expect * 0.1);
}

TEST(Roofline, UnifiedSkipsTransfers)
{
    const auto w = cfdSolver(4'000'000, 5);
    RooflineEngine apu(mi300aModel());
    const auto rep = apu.run(w);
    EXPECT_DOUBLE_EQ(rep.transferSeconds(), 0.0);

    RooflineEngine discrete(mi250xNodeModel());
    const auto drep = discrete.run(w);
    EXPECT_GT(drep.transferSeconds(), 0.0);
}

TEST(Roofline, ApuBeatsDiscreteOnCoupledWorkload)
{
    // The Fig. 20 OpenFOAM story: CPU<->GPU coupling dominates on
    // the discrete node.
    const auto w = cfdSolver(8'000'000, 10);
    const auto apu = RooflineEngine(mi300aModel()).run(w);
    const auto discrete = RooflineEngine(mi250xNodeModel()).run(w);
    EXPECT_GT(discrete.total_s / apu.total_s, 1.5);
}

TEST(Roofline, FineGrainedOverlapHelps)
{
    const auto w = cfdSolver(8'000'000, 5);
    RooflineEngine eng(mi300aModel());
    const auto fine = eng.run(w, CouplingMode::fineGrained);
    const auto coarse = eng.run(w, CouplingMode::coarseSync);
    EXPECT_LT(fine.total_s, coarse.total_s);
}

TEST(Roofline, DecodeLatencyTracksBandwidth)
{
    LlmConfig cfg;
    const auto w = llmDecode(cfg);
    const auto mi300x = RooflineEngine(mi300xModel()).run(w);
    const auto base = RooflineEngine(baselineGpuModel()).run(w);
    // 5.3 vs 3.35 TB/s: MI300X generates tokens faster.
    EXPECT_GT(base.total_s / mi300x.total_s, 1.3);
}

TEST(Roofline, CapacityWarningForOversizedModel)
{
    logging_detail::setQuiet(true);
    const auto before = logging_detail::warnCount();
    LlmConfig cfg;                      // 140 GB of weights
    RooflineEngine eng(baselineGpuModel());     // 80 GB device
    eng.run(llmDecode(cfg));
    EXPECT_GT(logging_detail::warnCount(), before);
}

TEST(Roofline, UnsupportedDataTypeFatal)
{
    auto w = gemm(1024, 1024, 1024, gpu::DataType::fp8,
                  gpu::Pipe::matrix);
    RooflineEngine eng(mi250xNodeModel());      // CDNA2: no FP8
    EXPECT_THROW(eng.run(w), std::runtime_error);
}

TEST(Roofline, ReportBreakdownSums)
{
    const auto w = cfdSolver(1'000'000, 2);
    const auto rep = RooflineEngine(mi250xNodeModel()).run(w);
    EXPECT_EQ(rep.phases.size(), w.phases.size());
    double sum = 0;
    for (const auto &p : rep.phases)
        sum += p.total_s;
    EXPECT_NEAR(sum, rep.total_s, 1e-12);
}
