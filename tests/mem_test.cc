/**
 * @file
 * Tests for address interleaving, cache arrays, timed caches, DRAM
 * channels, the Infinity Cache, and the HBM subsystem.
 */

#include <gtest/gtest.h>

#include <set>
#include <unordered_map>

#include "mem/cache.hh"
#include "mem/cache_array.hh"
#include "mem/dram.hh"
#include "mem/hbm_subsystem.hh"
#include "mem/infinity_cache.hh"
#include "mem/interleave.hh"
#include "sim/rng.hh"

using namespace ehpsim;
using namespace ehpsim::mem;

namespace
{

constexpr std::uint64_t testCapacity = 1ull << 30;  // 1 GiB

/** A perfect memory with fixed latency, for cache tests. */
class FlatMemory : public MemDevice
{
  public:
    FlatMemory(SimObject *parent, Tick latency)
        : MemDevice(parent, "flat"), latency_(latency)
    {}

    AccessResult
    access(Tick when, Addr, std::uint64_t bytes, bool write) override
    {
        ++accesses;
        bytes_seen += bytes;
        if (write)
            ++writes;
        return {when + latency_, true, 0};
    }

    std::uint64_t accesses = 0;
    std::uint64_t writes = 0;
    std::uint64_t bytes_seen = 0;

  private:
    Tick latency_;
};

} // anonymous namespace

// ---------------------------------------------------------------------
// Interleaving
// ---------------------------------------------------------------------

TEST(Interleave, PageStaysOnOneStack)
{
    InterleaveMap map(8, 16, testCapacity);
    // Paper Sec. IV.D: every 4 KB of sequential addresses maps to
    // the same stack.
    for (Addr page = 0; page < 64; ++page) {
        const unsigned stack = map.stackOf(page * 4096);
        for (Addr off = 0; off < 4096; off += 256)
            EXPECT_EQ(map.stackOf(page * 4096 + off), stack);
    }
}

TEST(Interleave, ConsecutivePagesSpreadAcrossStacks)
{
    InterleaveMap map(8, 16, testCapacity);
    std::set<unsigned> stacks;
    for (Addr page = 0; page < 8; ++page)
        stacks.insert(map.stackOf(page * 4096));
    // Each group of 8 pages is a permutation of the 8 stacks.
    EXPECT_EQ(stacks.size(), 8u);
}

TEST(Interleave, InPageStripingUsesAllChannelsOfStack)
{
    InterleaveMap map(8, 16, testCapacity);
    const unsigned stack = map.stackOf(0);
    std::set<unsigned> channels;
    for (Addr off = 0; off < 4096; off += 256) {
        const auto loc = map.locate(off);
        EXPECT_EQ(loc.stack, stack);
        channels.insert(loc.channel);
    }
    EXPECT_EQ(channels.size(), 16u);
}

class InterleaveBijection : public ::testing::TestWithParam<NumaMode>
{
};

TEST_P(InterleaveBijection, LocateIsInvertible)
{
    InterleaveMap map(8, 16, testCapacity, GetParam());
    Rng rng(123);
    for (int i = 0; i < 20000; ++i) {
        const Addr a = rng.nextBounded(testCapacity);
        const auto loc = map.locate(a);
        EXPECT_LT(loc.channel, map.numChannels());
        EXPECT_EQ(map.addressOf(loc.channel, loc.local), a);
    }
}

TEST_P(InterleaveBijection, NoTwoAddressesCollide)
{
    InterleaveMap map(4, 4, 1ull << 24, GetParam(), 4096, 256);
    // Exhaustively map a region at line granularity and check
    // distinct (channel, local) pairs.
    std::set<std::pair<unsigned, Addr>> seen;
    for (Addr a = 0; a < (1ull << 20); a += 128) {
        const auto loc = map.locate(a);
        const auto key = std::make_pair(loc.channel, loc.local);
        EXPECT_TRUE(seen.insert(key).second) << "addr " << a;
    }
}

INSTANTIATE_TEST_SUITE_P(Modes, InterleaveBijection,
                         ::testing::Values(NumaMode::nps1,
                                           NumaMode::nps4));

TEST(Interleave, Nps4ConfinesDomainsToStackQuadrants)
{
    InterleaveMap map(8, 16, testCapacity, NumaMode::nps4);
    const std::uint64_t domain_size = testCapacity / 4;
    for (unsigned d = 0; d < 4; ++d) {
        for (Addr off = 0; off < 1 << 20; off += 4096) {
            const Addr a = d * domain_size + off;
            EXPECT_EQ(map.domainOf(a), d);
            const unsigned stack = map.stackOf(a);
            EXPECT_GE(stack, d * 2);
            EXPECT_LT(stack, (d + 1) * 2);
        }
    }
}

TEST(Interleave, ChannelLoadIsBalanced)
{
    InterleaveMap map(8, 16, testCapacity);
    std::unordered_map<unsigned, unsigned> counts;
    for (Addr a = 0; a < (64ull << 20); a += 4096)
        ++counts[map.locate(a).channel / 16];   // per stack
    for (const auto &kv : counts) {
        EXPECT_NEAR(kv.second, 2048, 64);
    }
}

TEST(Interleave, RejectsBadGeometry)
{
    EXPECT_THROW(InterleaveMap(3, 16, testCapacity),
                 std::runtime_error);
    EXPECT_THROW(InterleaveMap(8, 16, testCapacity + 1),
                 std::runtime_error);
}

TEST(Interleave, OutOfRangeAddressFatal)
{
    InterleaveMap map(8, 16, testCapacity);
    EXPECT_THROW(map.locate(testCapacity), std::runtime_error);
}

// ---------------------------------------------------------------------
// CacheArray
// ---------------------------------------------------------------------

TEST(CacheArray, HitAfterInsert)
{
    CacheArray arr(8 * 1024, 4, 64);
    EXPECT_FALSE(arr.lookup(0x1000).has_value());
    arr.insert(0x1000, false);
    EXPECT_TRUE(arr.lookup(0x1000).has_value());
    EXPECT_TRUE(arr.lookup(0x1020).has_value());    // same line
    EXPECT_FALSE(arr.lookup(0x1040).has_value());   // next line
}

TEST(CacheArray, LruEvictsOldest)
{
    // 4-way, one set per... size 4*64 = 256 B -> 1 set.
    CacheArray arr(256, 4, 64, ReplPolicy::lru);
    for (Addr a = 0; a < 4 * 64; a += 64)
        arr.insert(a, false);
    arr.lookup(0);          // refresh line 0
    const auto victim = arr.insert(0x1000, false);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->tag, 64u);    // line 1 was least recent
    EXPECT_TRUE(arr.lookup(0).has_value());
}

TEST(CacheArray, DirtyVictimReported)
{
    CacheArray arr(256, 4, 64);
    for (Addr a = 0; a < 4 * 64; a += 64)
        arr.insert(a, true);
    const auto victim = arr.insert(0x2000, false);
    ASSERT_TRUE(victim.has_value());
    EXPECT_TRUE(victim->dirty);
}

TEST(CacheArray, InvalidateReturnsLine)
{
    CacheArray arr(8 * 1024, 4, 64);
    arr.insert(0x40, true);
    const auto line = arr.invalidate(0x40);
    ASSERT_TRUE(line.has_value());
    EXPECT_TRUE(line->dirty);
    EXPECT_FALSE(arr.lookup(0x40).has_value());
    EXPECT_FALSE(arr.invalidate(0x40).has_value());
}

TEST(CacheArray, FlushReturnsDirtyLines)
{
    CacheArray arr(8 * 1024, 4, 64);
    arr.insert(0x00, true);
    arr.insert(0x40, false);
    arr.insert(0x80, true);
    const auto dirty = arr.flushAll();
    EXPECT_EQ(dirty.size(), 2u);
    EXPECT_EQ(arr.numValid(), 0u);
}

class CacheArrayPolicy : public ::testing::TestWithParam<ReplPolicy>
{
};

TEST_P(CacheArrayPolicy, InvariantsUnderRandomTraffic)
{
    CacheArray arr(16 * 1024, 8, 128, GetParam(), 99);
    Rng rng(5);
    std::uint64_t hits = 0;
    for (int i = 0; i < 20000; ++i) {
        const Addr a = rng.nextBounded(1 << 18);
        if (arr.lookup(a)) {
            ++hits;
        } else {
            arr.insert(a, rng.nextBool(0.5));
        }
        if (i % 1024 == 0) {
            EXPECT_TRUE(arr.tagsUnique());
        }
    }
    EXPECT_TRUE(arr.tagsUnique());
    EXPECT_LE(arr.numValid(), 16384u / 128u);
    EXPECT_GT(hits, 0u);
}

TEST_P(CacheArrayPolicy, CapacityWorkingSetAlwaysHits)
{
    // A working set exactly matching capacity, touched round-robin,
    // must stay resident under LRU; PLRU/random may evict but the
    // structure must stay consistent.
    CacheArray arr(8 * 1024, 8, 64, GetParam());
    for (Addr a = 0; a < 8 * 1024; a += 64)
        arr.insert(a, false);
    EXPECT_EQ(arr.numValid(), 128u);
    if (GetParam() == ReplPolicy::lru) {
        for (Addr a = 0; a < 8 * 1024; a += 64)
            EXPECT_TRUE(arr.lookup(a).has_value());
    }
    EXPECT_TRUE(arr.tagsUnique());
}

INSTANTIATE_TEST_SUITE_P(Policies, CacheArrayPolicy,
                         ::testing::Values(ReplPolicy::lru,
                                           ReplPolicy::plru,
                                           ReplPolicy::random));

TEST(CacheArray, RejectsBadGeometry)
{
    EXPECT_THROW(CacheArray(100, 4, 64), std::runtime_error);
    EXPECT_THROW(CacheArray(8192, 0, 64), std::runtime_error);
    EXPECT_THROW(CacheArray(8192, 4, 48), std::runtime_error);
}

// ---------------------------------------------------------------------
// Timed cache
// ---------------------------------------------------------------------

TEST(Cache, MissFetchesFromBelowThenHits)
{
    SimObject root(nullptr, "root");
    FlatMemory memory(&root, 100'000);
    CacheParams cp;
    cp.size_bytes = 32 * 1024;
    cp.line_bytes = 128;
    Cache cache(&root, "l1", cp, &memory);

    const auto miss = cache.access(0, 0x1000, 128, false);
    EXPECT_FALSE(miss.hit);
    EXPECT_EQ(memory.accesses, 1u);
    EXPECT_GT(miss.complete, 100'000u);

    const auto hit = cache.access(miss.complete, 0x1000, 128, false);
    EXPECT_TRUE(hit.hit);
    EXPECT_EQ(memory.accesses, 1u);
    EXPECT_LT(hit.complete - miss.complete,
              miss.complete);
    EXPECT_DOUBLE_EQ(cache.hits.value(), 1.0);
    EXPECT_DOUBLE_EQ(cache.misses.value(), 1.0);
}

TEST(Cache, MultiLineRequestCountsEachLine)
{
    SimObject root(nullptr, "root");
    FlatMemory memory(&root, 10'000);
    CacheParams cp;
    cp.size_bytes = 32 * 1024;
    cp.line_bytes = 128;
    Cache cache(&root, "l1", cp, &memory);
    cache.access(0, 0, 1024, false);    // 8 lines
    EXPECT_DOUBLE_EQ(cache.misses.value(), 8.0);
    EXPECT_EQ(memory.accesses, 8u);
}

TEST(Cache, DirtyEvictionWritesBack)
{
    SimObject root(nullptr, "root");
    FlatMemory memory(&root, 1'000);
    CacheParams cp;
    cp.size_bytes = 512;        // 4 lines total, 1 set x 4 ways
    cp.assoc = 4;
    cp.line_bytes = 128;
    Cache cache(&root, "tiny", cp, &memory);

    for (Addr a = 0; a < 4 * 128; a += 128)
        cache.access(0, a, 128, true);
    EXPECT_EQ(memory.writes, 0u);       // write-back: nothing yet
    cache.access(0, 0x4000, 128, false);
    EXPECT_DOUBLE_EQ(cache.writebacks.value(), 1.0);
    EXPECT_EQ(memory.writes, 1u);
}

TEST(Cache, WriteThroughForwardsStores)
{
    SimObject root(nullptr, "root");
    FlatMemory memory(&root, 1'000);
    CacheParams cp;
    cp.size_bytes = 32 * 1024;
    cp.line_bytes = 64;
    cp.write_through = true;
    Cache cache(&root, "wt", cp, &memory);
    cache.access(0, 0, 64, true);       // miss: fill + store-through
    cache.access(0, 0, 64, true);       // hit: still store-through
    EXPECT_GE(memory.writes, 1u);
}

TEST(Cache, FlushWritesDirtyAndEmpties)
{
    SimObject root(nullptr, "root");
    FlatMemory memory(&root, 1'000);
    CacheParams cp;
    cp.size_bytes = 32 * 1024;
    cp.line_bytes = 128;
    Cache cache(&root, "l1", cp, &memory);
    cache.access(0, 0, 512, true);
    const auto flushed = cache.flush(0);
    EXPECT_EQ(flushed, 512u);
    EXPECT_EQ(cache.array().numValid(), 0u);
}

TEST(Cache, ProbeInvalidateDropsLine)
{
    SimObject root(nullptr, "root");
    FlatMemory memory(&root, 1'000);
    CacheParams cp;
    Cache cache(&root, "l1", cp, &memory);
    cache.access(0, 0x100, 64, false);
    cache.probeInvalidate(0x100);
    EXPECT_DOUBLE_EQ(cache.probe_invalidations.value(), 1.0);
    const auto res = cache.access(0, 0x100, 64, false);
    EXPECT_FALSE(res.hit);
}

// ---------------------------------------------------------------------
// DRAM
// ---------------------------------------------------------------------

TEST(Dram, LatencyAndBandwidth)
{
    SimObject root(nullptr, "root");
    DramParams p = hbm3ChannelParams();
    DramChannel ch(&root, "ch", p);
    const auto r = ch.access(0, 0, 128, false);
    EXPECT_GT(r.complete, p.access_latency);
    // One 128 B transfer at 41.4 GB/s ~ 3 ns + latency.
    EXPECT_LT(r.complete, p.access_latency + 10'000);
}

TEST(Dram, StreamApproachesPeakBandwidth)
{
    SimObject root(nullptr, "root");
    DramParams p = hbm3ChannelParams();
    DramChannel ch(&root, "ch", p);
    Tick t = 0;
    const std::uint64_t total = 4 << 20;
    // Stream striped across rows so banks rotate.
    for (Addr a = 0; a < total; a += 256)
        t = std::max(t, ch.access(0, a, 256, false).complete);
    const double bw = ch.achievedBandwidth(t);
    EXPECT_GT(bw, 0.7 * p.bandwidth);
    EXPECT_LE(bw, 1.05 * p.bandwidth);
}

TEST(Dram, SameBankStreamIsSlower)
{
    SimObject root(nullptr, "root");
    DramParams p = hbm3ChannelParams();
    DramChannel good(&root, "good", p);
    DramChannel bad(&root, "bad", p);
    Tick tg = 0, tb = 0;
    for (int i = 0; i < 512; ++i) {
        // Rotate banks vs hammer one row's bank.
        tg = std::max(tg,
                      good.access(0, Addr(i) * p.row_bytes, 64,
                                  false).complete);
        tb = std::max(tb,
                      bad.access(0,
                                 Addr(i) * p.row_bytes *
                                     p.num_banks,
                                 64, false).complete);
    }
    EXPECT_GT(tb, tg);
    EXPECT_GT(bad.bank_conflicts.value(), 0.0);
}

// ---------------------------------------------------------------------
// Infinity Cache slice
// ---------------------------------------------------------------------

TEST(InfinityCache, HitsServeWithoutHbm)
{
    SimObject root(nullptr, "root");
    DramChannel ch(&root, "ch", hbm3ChannelParams());
    InfinityCacheParams icp;
    icp.prefetch_depth = 0;
    InfinityCacheSlice slice(&root, "mall", icp, &ch);

    slice.access(0, 0, 128, false);
    EXPECT_DOUBLE_EQ(slice.misses.value(), 1.0);
    const double hbm_before = slice.bytes_from_hbm.value();
    slice.access(0, 0, 128, false);
    EXPECT_DOUBLE_EQ(slice.hits.value(), 1.0);
    EXPECT_DOUBLE_EQ(slice.bytes_from_hbm.value(), hbm_before);
}

TEST(InfinityCache, NextLinePrefetchHits)
{
    SimObject root(nullptr, "root");
    DramChannel ch(&root, "ch", hbm3ChannelParams());
    InfinityCacheParams icp;
    icp.prefetch_depth = 2;
    InfinityCacheSlice slice(&root, "mall", icp, &ch);

    slice.access(0, 0, 128, false);         // miss; prefetch 128, 256
    slice.access(0, 128, 128, false);       // prefetch hit
    slice.access(0, 256, 128, false);       // prefetch hit
    EXPECT_DOUBLE_EQ(slice.prefetch_hits.value(), 2.0);
    EXPECT_DOUBLE_EQ(slice.misses.value(), 1.0);
}

TEST(InfinityCache, BandwidthAmplificationOnReuse)
{
    SimObject root(nullptr, "root");
    DramChannel ch(&root, "ch", hbm3ChannelParams());
    InfinityCacheParams icp;
    icp.prefetch_depth = 0;
    InfinityCacheSlice slice(&root, "mall", icp, &ch);

    // Stream a 1 MB working set (fits in the 2 MB slice) 8 times.
    for (int pass = 0; pass < 8; ++pass) {
        for (Addr a = 0; a < (1 << 20); a += 128)
            slice.access(0, a, 128, false);
    }
    // ~8x amplification: one fill, eight servings.
    EXPECT_GT(slice.amplification(), 6.0);
    EXPECT_GT(slice.hitRate(), 0.8);
}

TEST(InfinityCache, WritebacksOnDirtyEviction)
{
    SimObject root(nullptr, "root");
    DramChannel ch(&root, "ch", hbm3ChannelParams());
    InfinityCacheParams icp;
    icp.size_bytes = 64 * 1024;     // small slice to force evictions
    icp.assoc = 4;
    icp.prefetch_depth = 0;
    InfinityCacheSlice slice(&root, "mall", icp, &ch);
    for (Addr a = 0; a < (1 << 20); a += 128)
        slice.access(0, a, 128, true);
    EXPECT_GT(slice.writebacks.value(), 0.0);
}

// ---------------------------------------------------------------------
// HBM subsystem
// ---------------------------------------------------------------------

TEST(HbmSubsystem, GeometryAndPeaks)
{
    SimObject root(nullptr, "root");
    HbmSubsystemParams p;       // MI300A defaults
    HbmSubsystem sys(&root, "hbm", p);
    EXPECT_EQ(sys.numChannels(), 128u);
    // Paper: ~5.3 TB/s HBM peak, 17 TB/s Infinity Cache peak.
    EXPECT_NEAR(sys.peakHbmBandwidth() / 1e12, 5.3, 0.05);
    EXPECT_NEAR(sys.peakCacheBandwidth() / 1e12, 17.0, 0.05);
}

TEST(HbmSubsystem, StreamUsesManyChannels)
{
    SimObject root(nullptr, "root");
    HbmSubsystemParams p;
    p.cache.prefetch_depth = 0;
    HbmSubsystem sys(&root, "hbm", p);
    for (Addr a = 0; a < (1 << 20); a += 256)
        sys.access(0, a, 256, false);
    unsigned used = 0;
    for (unsigned ch = 0; ch < sys.numChannels(); ++ch) {
        if (sys.channel(ch)->bytes_served.value() > 0)
            ++used;
    }
    EXPECT_GT(used, 100u);
}

TEST(HbmSubsystem, LargeRequestFansOut)
{
    SimObject root(nullptr, "root");
    HbmSubsystemParams p;
    p.cache.prefetch_depth = 0;
    HbmSubsystem sys(&root, "hbm", p);
    const auto r = sys.access(0, 0, 64 * 1024, false);
    EXPECT_GT(r.complete, 0u);
    // The 64 KB spans 16 pages -> multiple stacks.
    std::set<unsigned> stacks;
    for (Addr a = 0; a < 64 * 1024; a += 4096)
        stacks.insert(sys.interleave().stackOf(a));
    EXPECT_GT(stacks.size(), 4u);
}

TEST(HbmSubsystem, NoCacheModeMatchesMi250x)
{
    SimObject root(nullptr, "root");
    HbmSubsystemParams p;
    p.num_stacks = 8;
    p.channels_per_stack = 8;
    p.channel = hbm2eChannelParams();
    p.enable_infinity_cache = false;
    HbmSubsystem sys(&root, "hbm", p);
    EXPECT_NEAR(sys.peakHbmBandwidth() / 1e12, 3.2, 0.05);
    EXPECT_EQ(sys.slice(0), nullptr);
    EXPECT_DOUBLE_EQ(sys.cacheHitRate(), 0.0);
    sys.access(0, 0, 256, false);
    EXPECT_GT(sys.channel(0)->bytes_served.value() +
                  sys.channel(1)->bytes_served.value(),
              0.0);
}
