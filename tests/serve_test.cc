/**
 * @file
 * Tests for the LLM serving subsystem (src/serve): KV-cache
 * accounting, capacity-pressure eviction/recompute, continuous
 * batching through the engine, fault-degraded service, and
 * byte-determinism of serving sweeps under a worker pool.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "fault/fault_plan.hh"
#include "serve/kv_cache.hh"
#include "serve/scenario.hh"
#include "serve/serving_config.hh"
#include "serve/serving_engine.hh"
#include "sim/units.hh"
#include "sweep/sweep_runner.hh"

using namespace ehpsim;
using namespace ehpsim::serve;

// ---------------------------------------------------------------------
// Model/config footprints
// ---------------------------------------------------------------------

TEST(ServingConfig, ModelFootprints)
{
    LlmModelSpec m;  // Llama-2 70B fp16 defaults
    EXPECT_EQ(m.weightBytes(), 140'000'000'000ull);
    // 2 (K+V) x 80 layers x (8192/64) head_dim x 8 kv_heads x 2 B.
    EXPECT_EQ(m.kvBytesPerToken(), 327'680ull);
    EXPECT_EQ(m.activationBytesPerToken(), 16'384ull);

    m.dtype = gpu::DataType::fp8;
    EXPECT_EQ(m.weightBytes(), 70'000'000'000ull);
    EXPECT_EQ(m.kvBytesPerToken(), 163'840ull);
}

TEST(ServingConfig, CapacityStorySetsKvBudgets)
{
    const ServingConfig mi = mi300xServingConfig();
    const ServingConfig base = baselineGpuServingConfig();

    // FP16 weights (140 GB) fit under 192 GB with tens of GB of KV
    // headroom; the 80 GB baseline only serves at all because FP8
    // halves the weights, and keeps far less KV.
    EXPECT_EQ(mi.model.dtype, gpu::DataType::fp16);
    EXPECT_EQ(base.model.dtype, gpu::DataType::fp8);
    EXPECT_GT(mi.kvBudgetBytes(), 40ull * GiB);
    EXPECT_LT(base.kvBudgetBytes(), 12ull * GiB);
    EXPECT_GT(base.kvBudgetBytes(), 0ull);
    EXPECT_GT(mi.kvTotalBlocks(), base.kvTotalBlocks());
    EXPECT_NO_THROW(mi.validate());
    EXPECT_NO_THROW(base.validate());
}

TEST(ServingConfig, Fp16WeightsOverflowBaselineCapacity)
{
    ServingConfig cfg = baselineGpuServingConfig();
    cfg.model.dtype = gpu::DataType::fp16;
    EXPECT_EQ(cfg.kvBudgetBytes(), 0ull);
    EXPECT_THROW(cfg.validate(), std::runtime_error);
}

// ---------------------------------------------------------------------
// KV-cache accounting
// ---------------------------------------------------------------------

namespace
{

KvCacheManager::Params
smallPool(std::uint64_t blocks)
{
    KvCacheManager::Params p;
    p.total_blocks = blocks;
    p.block_tokens = 16;
    return p;
}

} // anonymous namespace

TEST(KvCache, BlocksForTokensRoundsUp)
{
    EventQueue eq;
    SimObject root(nullptr, "root", &eq);
    KvCacheManager kv(&root, "kv", smallPool(8));
    EXPECT_EQ(kv.blocksForTokens(1), 1u);
    EXPECT_EQ(kv.blocksForTokens(16), 1u);
    EXPECT_EQ(kv.blocksForTokens(17), 2u);
    EXPECT_EQ(kv.blocksForTokens(160), 10u);
}

TEST(KvCache, ReserveReleaseAndFailureCounting)
{
    EventQueue eq;
    SimObject root(nullptr, "root", &eq);
    KvCacheManager kv(&root, "kv", smallPool(8));

    EXPECT_TRUE(kv.tryReserve(5));
    EXPECT_EQ(kv.usedBlocks(), 5u);
    EXPECT_EQ(kv.freeBlocks(), 3u);
    EXPECT_FALSE(kv.tryReserve(4));  // 5 + 4 > 8
    EXPECT_EQ(kv.reserveFailures(), 1u);
    EXPECT_TRUE(kv.tryReserve(3));
    EXPECT_DOUBLE_EQ(kv.occupancy(), 1.0);
    EXPECT_EQ(kv.peakUsedBlocks(), 8u);

    kv.release(8);
    EXPECT_EQ(kv.usedBlocks(), 0u);
    EXPECT_EQ(kv.peakUsedBlocks(), 8u);  // high-water mark sticks
    EXPECT_THROW(kv.release(1), std::runtime_error);
}

TEST(KvCache, ShrinkingPoolOverCommits)
{
    EventQueue eq;
    SimObject root(nullptr, "root", &eq);
    KvCacheManager kv(&root, "kv", smallPool(8));
    ASSERT_TRUE(kv.tryReserve(6));
    kv.setTotalBlocks(4);  // HBM blackout shrank capacity
    EXPECT_TRUE(kv.overCommitted());
    EXPECT_EQ(kv.freeBlocks(), 0u);
    EXPECT_FALSE(kv.tryReserve(1));
    kv.release(3);
    EXPECT_FALSE(kv.overCommitted());
}

// ---------------------------------------------------------------------
// End-to-end scenarios
// ---------------------------------------------------------------------

namespace
{

ScenarioParams
tinyScenario()
{
    ScenarioParams p;
    p.num_requests = 8;
    p.input_tokens = 128;
    p.output_tokens = 24;
    p.load_rps = 4.0;
    p.seed = 7;
    return p;
}

} // anonymous namespace

TEST(ServingScenario, CompletesEveryRequestAndSamplesLatencies)
{
    const ScenarioParams p = tinyScenario();
    const ScenarioResult r = runServingScenario(p);

    EXPECT_EQ(r.completed, 8u);
    EXPECT_GT(r.ttft_p50_s, 0.0);
    EXPECT_GE(r.ttft_p99_s, r.ttft_p50_s);
    EXPECT_GT(r.tpot_p50_s, 0.0);
    EXPECT_GT(r.tokens_per_s, 0.0);
    EXPECT_GT(r.iterations, 0u);
    EXPECT_EQ(r.evictions, 0u);  // tiny load on 192 GB: no pressure
    EXPECT_GT(r.makespan_s, 0.0);
    EXPECT_FALSE(r.stats_json.empty());
}

TEST(ServingScenario, LightLoadMeetsSlos)
{
    ScenarioParams p = tinyScenario();
    p.load_rps = 0.5;
    const ScenarioResult r = runServingScenario(p);
    EXPECT_DOUBLE_EQ(r.slo_attainment, 1.0);
    EXPECT_DOUBLE_EQ(r.mean_queue_depth, 0.0);
}

TEST(ServingScenario, KvPressureEvictsAndRecomputes)
{
    // Shrink the KV pool so only ~1.5 requests fit resident at once:
    // each request pins ceil((128 + 24 + 1)/16) = 10 blocks.
    ScenarioParams p = tinyScenario();
    p.load_rps = 50.0;  // all requests arrive nearly at once
    p.kv_blocks_override = 16;
    const ScenarioResult r = runServingScenario(p);

    EXPECT_EQ(r.completed, 8u);          // degrades, never deadlocks
    EXPECT_GT(r.evictions, 0u);          // capacity pressure is real
    EXPECT_GT(r.recompute_tokens, 0u);   // evicted context recomputed
    EXPECT_GT(r.kv_reserve_failures, 0u);
    EXPECT_GT(r.kv_peak_occupancy, 0.8);

    // The same trace with ample KV finishes strictly sooner.
    ScenarioParams roomy = p;
    roomy.kv_blocks_override = 0;
    const ScenarioResult rr = runServingScenario(roomy);
    EXPECT_EQ(rr.evictions, 0u);
    EXPECT_LT(rr.makespan_s, r.makespan_s);
}

TEST(ServingScenario, TensorParallelIssuesRealCollectives)
{
    ScenarioParams p = tinyScenario();
    p.tp = 2;
    const ScenarioResult r = runServingScenario(p);
    EXPECT_EQ(r.completed, 8u);
    // Every iteration all-reduces over the octo node's links; the
    // full stats tree must carry the comm group's op counters.
    EXPECT_NE(r.stats_json.find("\"ops_completed\""),
              std::string::npos);
    EXPECT_GT(r.iterations, 0u);
}

TEST(ServingScenario, FaultsDegradeServiceWithoutLosingRequests)
{
    ScenarioParams clean = tinyScenario();
    clean.tp = 2;

    ScenarioParams faulty = clean;
    faulty.faults.seed = 99;
    faulty.faults.chunk_error_rate = 0.05;
    faulty.faults.channel_faults.push_back(
        fault::ChannelFault{5, 100'000'000'000});

    const ScenarioResult rc = runServingScenario(clean);
    const ScenarioResult rf = runServingScenario(faulty);

    EXPECT_EQ(rf.completed, 8u);
    EXPECT_GT(rf.chunk_retries, 0u);
    EXPECT_EQ(rf.channels_dark, 1u);
    // Retried chunks and a darker HBM make service measurably
    // slower end to end.
    EXPECT_GT(rf.makespan_s, rc.makespan_s);
    EXPECT_GE(rf.tpot_p95_s, rc.tpot_p95_s);
}

TEST(ServingScenario, UnknownDeviceIsFatal)
{
    ScenarioParams p = tinyScenario();
    p.device = "tpu";
    EXPECT_THROW(runServingScenario(p), std::runtime_error);
}

// ---------------------------------------------------------------------
// Determinism: serving sweeps under a worker pool
// ---------------------------------------------------------------------

namespace
{

/**
 * A device x load serving sweep, one faulted TP case included. The
 * serialized document carries the full stats tree of every job, so
 * any nondeterminism anywhere in the arrival/batcher/KV/comm/fault
 * path shows up as a byte diff.
 */
std::string
runServingSweep(unsigned jobs)
{
    sweep::SweepRunner runner(jobs);
    for (const char *device : {"mi300x", "baseline"}) {
        for (const double load : {2.0, 8.0}) {
            const std::string name = std::string("serve/") + device +
                                     "/" + std::to_string(load);
            runner.addJob(name, [device, load](json::JsonWriter &jw) {
                ScenarioParams p;
                p.device = device;
                p.load_rps = load;
                p.num_requests = 6;
                p.input_tokens = 256;
                p.output_tokens = 32;
                p.seed = 2024;
                const ScenarioResult r = runServingScenario(p);
                dumpScenario(jw, p, r);
            });
        }
    }
    runner.addJob("serve/tp2_faulted", [](json::JsonWriter &jw) {
        ScenarioParams p;
        p.tp = 2;
        p.num_requests = 6;
        p.input_tokens = 256;
        p.output_tokens = 32;
        p.load_rps = 4.0;
        p.seed = 2024;
        p.faults.seed = 77;
        p.faults.chunk_error_rate = 0.03;
        p.faults.link_faults.push_back(
            fault::parseLinkFault("mi300x0:mi300x1@50000000000"));
        const ScenarioResult r = runServingScenario(p);
        dumpScenario(jw, p, r);
    });

    const auto results = runner.run();
    std::ostringstream os;
    sweep::SweepRunner::dumpJson(os, "serving_sweep", results);
    return os.str();
}

} // anonymous namespace

TEST(ServingSweep, SameSeedIsByteIdenticalAcrossWorkersAndRuns)
{
    const std::string serial = runServingSweep(1);
    const std::string parallel = runServingSweep(8);
    const std::string again = runServingSweep(8);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, parallel);
    EXPECT_EQ(parallel, again);
}
