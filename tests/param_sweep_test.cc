/**
 * @file
 * Cross-cutting parameterized sweeps: cache geometries, interleave
 * geometries, DRAM rates, governor budgets, thermal grid
 * resolutions, and random fabric topologies. These pin down the
 * *shape* of each model over its parameter space, not just one
 * configuration.
 */

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "fabric/network.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/interleave.hh"
#include "power/governor.hh"
#include "power/thermal.hh"
#include "sim/rng.hh"

using namespace ehpsim;

namespace
{

class FlatMemory : public mem::MemDevice
{
  public:
    FlatMemory(SimObject *parent, Tick latency)
        : mem::MemDevice(parent, "flat"), latency_(latency)
    {}

    mem::AccessResult
    access(Tick when, Addr, std::uint64_t, bool) override
    {
        ++count;
        return {when + latency_, true, 0};
    }

    std::uint64_t count = 0;

  private:
    Tick latency_;
};

} // anonymous namespace

// ---------------------------------------------------------------------
// Cache geometry sweep
// ---------------------------------------------------------------------

using CacheGeom = std::tuple<std::uint64_t, unsigned, unsigned>;

class CacheGeometry : public ::testing::TestWithParam<CacheGeom>
{
};

TEST_P(CacheGeometry, WorkingSetBehaviour)
{
    const auto [size, assoc, line] = GetParam();
    SimObject root(nullptr, "root");
    FlatMemory memory(&root, 100'000);
    mem::CacheParams cp;
    cp.size_bytes = size;
    cp.assoc = assoc;
    cp.line_bytes = line;
    mem::Cache cache(&root, "c", cp, &memory);

    // A working set at half capacity, touched twice: the second
    // pass must hit entirely under LRU.
    const std::uint64_t ws = size / 2;
    for (int pass = 0; pass < 2; ++pass) {
        for (Addr a = 0; a < ws; a += line)
            cache.access(0, a, line, false);
    }
    const double expected_misses = static_cast<double>(ws / line);
    EXPECT_DOUBLE_EQ(cache.misses.value(), expected_misses);
    EXPECT_DOUBLE_EQ(cache.hits.value(), expected_misses);
    EXPECT_TRUE(cache.array().tagsUnique());

    // A working set at 4x capacity streams: hit rate collapses.
    mem::Cache big(&root, "b", cp, &memory);
    for (int pass = 0; pass < 2; ++pass) {
        for (Addr a = 0; a < 4 * size; a += line)
            big.access(0, a, line, false);
    }
    EXPECT_LT(big.hitRate(), 0.1);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    ::testing::Values(CacheGeom{16 * 1024, 4, 64},
                      CacheGeom{32 * 1024, 8, 128},
                      CacheGeom{256 * 1024, 8, 64},
                      CacheGeom{2 * 1024 * 1024, 16, 128},
                      CacheGeom{32 * 1024 * 1024, 16, 64}));

// ---------------------------------------------------------------------
// Interleave geometry sweep
// ---------------------------------------------------------------------

using IlvGeom = std::tuple<unsigned, unsigned>;

class InterleaveGeometry : public ::testing::TestWithParam<IlvGeom>
{
};

TEST_P(InterleaveGeometry, BijectiveAndBalanced)
{
    const auto [stacks, cps] = GetParam();
    mem::InterleaveMap map(stacks, cps, 1ull << 30);
    Rng rng(99);
    for (int i = 0; i < 5000; ++i) {
        const Addr a = rng.nextBounded(1ull << 30);
        const auto loc = map.locate(a);
        EXPECT_EQ(map.addressOf(loc.channel, loc.local), a);
    }
    // Balance over pages.
    std::vector<unsigned> per_stack(stacks, 0);
    for (Addr p = 0; p < 4096; ++p)
        ++per_stack[map.stackOf(p * 4096)];
    for (unsigned s = 0; s < stacks; ++s)
        EXPECT_NEAR(per_stack[s], 4096.0 / stacks,
                    4096.0 / stacks * 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, InterleaveGeometry,
    ::testing::Values(IlvGeom{2, 8}, IlvGeom{4, 8}, IlvGeom{4, 16},
                      IlvGeom{8, 8}, IlvGeom{8, 16},
                      IlvGeom{16, 8}));

// ---------------------------------------------------------------------
// DRAM rate sweep
// ---------------------------------------------------------------------

class DramRate : public ::testing::TestWithParam<double>
{
};

TEST_P(DramRate, StreamTracksConfiguredBandwidth)
{
    const double gb = GetParam();
    SimObject root(nullptr, "root");
    mem::DramParams p = mem::hbm3ChannelParams();
    p.bandwidth = gbps(gb);
    mem::DramChannel ch(&root, "ch", p);
    Tick t = 0;
    for (Addr a = 0; a < (2u << 20); a += 256)
        t = std::max(t, ch.access(0, a, 256, false).complete);
    const double achieved = ch.achievedBandwidth(t) / 1e9;
    EXPECT_GT(achieved, 0.6 * gb);
    EXPECT_LE(achieved, 1.05 * gb);
}

INSTANTIATE_TEST_SUITE_P(Rates, DramRate,
                         ::testing::Values(12.8, 25.6, 41.4, 50.3,
                                           64.0));

// ---------------------------------------------------------------------
// Governor budget sweep
// ---------------------------------------------------------------------

class GovernorBudget : public ::testing::TestWithParam<double>
{
};

TEST_P(GovernorBudget, AllocationRespectsAnyTdp)
{
    const double tdp = GetParam();
    SimObject root(nullptr, "root");
    power::PowerModel model(&root, "pm", tdp);
    for (int i = 0; i < 6; ++i) {
        model.addComponent({"xcd" + std::to_string(i),
                            power::Domain::xcd, 5.0, 75.0});
    }
    model.addComponent({"hbm", power::Domain::hbm, 15.0, 110.0});
    power::PowerGovernor gov(&root, "gov", &model);
    std::vector<double> util(model.components().size(), 1.0);
    const auto alloc = gov.allocate(util);
    EXPECT_LE(alloc.total, tdp + 1e-6);
    EXPECT_GE(alloc.total, model.idlePower() - 1e-6);
    // Higher TDP, higher (or equal) grant.
    if (tdp >= model.maxPower()) {
        EXPECT_NEAR(alloc.total, model.maxPower(), 1e-6);
    }
}

INSTANTIATE_TEST_SUITE_P(Budgets, GovernorBudget,
                         ::testing::Values(100.0, 250.0, 400.0,
                                           550.0, 800.0));

// ---------------------------------------------------------------------
// Thermal resolution sweep
// ---------------------------------------------------------------------

class ThermalResolution : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(ThermalResolution, SolutionConvergesAcrossResolutions)
{
    const unsigned n = GetParam();
    SimObject root(nullptr, "root");
    geom::Floorplan plan({0, 0, 20, 20});
    plan.add("hot", {4, 4, 8, 8}, geom::RegionKind::compute);
    power::ThermalParams tp;
    tp.nx = n;
    tp.ny = n;
    tp.tolerance = 1e-6;
    // Scale conductances with cell count so the physical problem is
    // resolution independent.
    const double cells = static_cast<double>(n) * n;
    tp.k_vertical = 24.0 / cells;
    tp.k_lateral = 0.05 * (64.0 / n);
    power::ThermalGrid grid(&root, "t", &plan, tp);
    grid.solve({100.0});
    // The hot-region mean temperature is resolution stable.
    const double t_hot = grid.regionTemperature("hot");
    EXPECT_GT(t_hot, 45.0);
    EXPECT_LT(t_hot, 85.0);
    EXPECT_LT(grid.conservationError(), 0.02);
}

INSTANTIATE_TEST_SUITE_P(Resolutions, ThermalResolution,
                         ::testing::Values(16u, 32u, 64u, 96u));

// ---------------------------------------------------------------------
// Random fabric topologies
// ---------------------------------------------------------------------

class RandomTopology : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RandomTopology, ConnectedGraphsRouteEverywhere)
{
    SimObject root(nullptr, "root");
    fabric::Network net(&root, "net");
    Rng rng(GetParam());
    const unsigned n = 12;
    std::vector<fabric::NodeId> nodes;
    for (unsigned i = 0; i < n; ++i) {
        nodes.push_back(net.addNode("n" + std::to_string(i),
                                    fabric::NodeKind::iod));
    }
    // Random spanning tree first (guarantees connectivity)...
    std::set<std::pair<unsigned, unsigned>> edges;
    for (unsigned i = 1; i < n; ++i) {
        const unsigned parent = rng.nextBounded(i);
        edges.insert({parent, i});
        net.connect(nodes[i], nodes[parent],
                    fabric::usrLinkParams());
    }
    // ...plus a few random extra edges.
    for (int e = 0; e < 6; ++e) {
        const unsigned a = rng.nextBounded(n);
        const unsigned b = rng.nextBounded(n);
        if (a == b)
            continue;
        const auto key = std::minmax(a, b);
        if (!edges.insert({key.first, key.second}).second)
            continue;
        net.connect(nodes[a], nodes[b],
                    fabric::serdesIfLinkParams());
    }
    // Every pair routes, and hop counts are symmetric.
    for (unsigned a = 0; a < n; ++a) {
        for (unsigned b = 0; b < n; ++b) {
            const unsigned h = net.hopCount(nodes[a], nodes[b]);
            EXPECT_EQ(h, net.hopCount(nodes[b], nodes[a]));
            if (a == b)
                EXPECT_EQ(h, 0u);
            else
                EXPECT_GE(h, 1u);
        }
    }
    // Messages arrive and pay at least per-hop latency.
    const auto res = net.send(0, nodes[0], nodes[n - 1], 64);
    EXPECT_GE(res.arrival,
              res.hops * 5'000u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTopology,
                         ::testing::Values(3, 14, 159, 2653));
