/**
 * @file
 * Tests for package geometry: transforms, TSV grids, the Fig. 9
 * mirroring-redundancy property, floorplans, and power delivery.
 */

#include <gtest/gtest.h>

#include "geom/alignment.hh"
#include "geom/floorplan.hh"
#include "geom/footprint.hh"
#include "geom/power_delivery.hh"
#include "geom/rect.hh"
#include "geom/transform.hh"
#include "geom/tsv_grid.hh"

using namespace ehpsim;
using namespace ehpsim::geom;

TEST(Rect, BasicPredicates)
{
    Rect r{1, 2, 4, 3};
    EXPECT_DOUBLE_EQ(r.area(), 12.0);
    EXPECT_TRUE(r.contains(Point{3, 4}));
    EXPECT_FALSE(r.contains(Point{0, 0}));
    EXPECT_TRUE(r.contains(Rect{2, 3, 1, 1}));
    EXPECT_FALSE(r.contains(Rect{4, 4, 3, 3}));
}

TEST(Rect, IntersectionAndBbox)
{
    Rect a{0, 0, 4, 4};
    Rect b{2, 2, 4, 4};
    EXPECT_TRUE(a.intersects(b));
    const Rect i = a.intersection(b);
    EXPECT_DOUBLE_EQ(i.area(), 4.0);
    const Rect u = a.bbox(b);
    EXPECT_DOUBLE_EQ(u.area(), 36.0);
    Rect c{10, 10, 1, 1};
    EXPECT_FALSE(a.intersects(c));
    EXPECT_DOUBLE_EQ(a.intersection(c).area(), 0.0);
}

TEST(Rect, AbuttingRectsDoNotIntersect)
{
    Rect a{0, 0, 2, 2};
    Rect b{2, 0, 2, 2};
    EXPECT_FALSE(a.intersects(b));
}

TEST(Transform, PointMapping)
{
    const double w = 10, h = 6;
    const Point p{1, 2};
    EXPECT_EQ(Transform(w, h, Orient::r0).apply(p), (Point{1, 2}));
    EXPECT_EQ(Transform(w, h, Orient::r180).apply(p), (Point{9, 4}));
    EXPECT_EQ(Transform(w, h, Orient::mirrored).apply(p),
              (Point{9, 2}));
    EXPECT_EQ(Transform(w, h, Orient::mirroredR180).apply(p),
              (Point{1, 4}));
}

TEST(Transform, OffsetApplies)
{
    Transform t(10, 6, Orient::r0, 100, 200);
    EXPECT_EQ(t.apply(Point{1, 2}), (Point{101, 202}));
}

class OrientInvolution : public ::testing::TestWithParam<Orient>
{
};

TEST_P(OrientInvolution, EveryOrientIsItsOwnInverse)
{
    const Orient o = GetParam();
    Transform t(12, 8, o);
    const Point p{3.5, 1.25};
    EXPECT_EQ(t.apply(t.apply(p)), p);
    EXPECT_EQ(compose(o, o), Orient::r0);
}

INSTANTIATE_TEST_SUITE_P(AllOrients, OrientInvolution,
                         ::testing::ValuesIn(allOrients));

class OrientCompose
    : public ::testing::TestWithParam<std::tuple<Orient, Orient>>
{
};

TEST_P(OrientCompose, ComposeMatchesSequentialApplication)
{
    const auto [a, b] = GetParam();
    const double w = 10, h = 10;   // square die: bbox is preserved
    Transform ta(w, h, a), tb(w, h, b);
    Transform tc(w, h, compose(a, b));
    const Point p{2.25, 7.5};
    EXPECT_EQ(tb.apply(ta.apply(p)), tc.apply(p));
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, OrientCompose,
    ::testing::Combine(::testing::ValuesIn(allOrients),
                       ::testing::ValuesIn(allOrients)));

TEST(Transform, RectMappingPreservesArea)
{
    Transform t(10, 6, Orient::r180);
    Rect r{1, 1, 3, 2};
    const Rect m = t.apply(r);
    EXPECT_DOUBLE_EQ(m.area(), r.area());
    EXPECT_TRUE(nearEq(m.x, 6));
    EXPECT_TRUE(nearEq(m.y, 3));
}

TEST(TsvSiteSet, MembershipWithTolerance)
{
    TsvSiteSet s({{1, 1}, {2, 2}});
    EXPECT_TRUE(s.containsSite({1.0005, 1.0}));
    EXPECT_FALSE(s.containsSite({1.1, 1.0}));
    EXPECT_EQ(s.countAligned({{1, 1}, {3, 3}}), 1u);
}

TEST(PowerTsvGrid, CenteredGridIsSymmetric)
{
    PowerTsvGrid grid({0, 0, 10, 8}, 0.5);
    TsvSiteSet sites(grid.sites());
    for (Orient o : allOrients)
        EXPECT_TRUE(sites.symmetricUnder(o, 10, 8))
            << orientName(o);
}

TEST(PowerTsvGrid, DensityAndCurrent)
{
    PowerTsvGrid grid({0, 0, 10, 10}, 1.0);
    EXPECT_EQ(grid.numSites(), 121u);   // 11 x 11
    // Paper Sec. V.D: >1.5 A/mm^2 through the chiplet TSV grid.
    EXPECT_DOUBLE_EQ(grid.currentCapacity(1.5), 150.0);
}

TEST(PowerTsvGrid, ChannelWidthForSramMacros)
{
    PowerTsvGrid grid({0, 0, 10, 10}, 0.5);
    // Fig. 10: Infinity Cache arrays pitch-matched between stripes.
    EXPECT_DOUBLE_EQ(grid.channelWidth(0.1), 0.4);
    EXPECT_DOUBLE_EQ(grid.channelWidth(0.6), 0.0);
}

namespace
{

/** A small XCD-like chiplet with one off-center signal bank. */
ChipletFootprint
makeChiplet()
{
    ChipletFootprint fp("xcd", 6.0, 4.0);
    fp.addBank({"tsv_main", {0.5, 0.5, 1.0, 1.0}, 0.25});
    fp.addBank({"tsv_aux", {4.0, 2.5, 1.0, 1.0}, 0.25});
    return fp;
}

/** IOD plan whose banks line up with the chiplet at offset (2, 3). */
IodTsvPlan
makeIodPlan(bool redundant)
{
    IodTsvPlan plan(10.0, 10.0);
    plan.addBank({"land_main", {2.5, 3.5, 1.0, 1.0}, 0.25});
    plan.addBank({"land_aux", {6.0, 5.5, 1.0, 1.0}, 0.25});
    if (redundant)
        plan.addMirrorRedundancy();
    return plan;
}

} // anonymous namespace

TEST(Alignment, ChipletAlignsOnNormalIod)
{
    const auto chiplet = makeChiplet();
    const auto plan = makeIodPlan(false);
    const auto res = plan.checkStackAlignment(chiplet, Orient::r0,
                                              2.0, 3.0, Orient::r0);
    EXPECT_TRUE(res.aligned);
    EXPECT_EQ(res.pads_checked, res.pads_aligned);
    EXPECT_GT(res.pads_checked, 0u);
}

TEST(Alignment, ChipletMisalignsOnMirroredIodWithoutRedundancy)
{
    const auto chiplet = makeChiplet();
    const auto plan = makeIodPlan(false);
    // The unmirrored chiplet on a mirrored IOD: the banks are
    // asymmetric, so alignment must fail (this is the Fig. 9
    // problem statement).
    const auto res = plan.checkStackAlignment(
        chiplet, Orient::r0, 2.0, 3.0, Orient::mirrored);
    EXPECT_FALSE(res.aligned);
}

/**
 * Fig. 9's property: with mirror-redundant TSVs the redundant site
 * set is invariant under mirroring, so the *unmirrored* chiplet at
 * its *original* placement still lands on TSVs when the IOD below
 * is a mirrored instance.
 */
TEST(Alignment, RedundantTsvsEnableMirroredIods)
{
    const auto chiplet = makeChiplet();
    const auto plan = makeIodPlan(true);

    const auto normal = plan.checkStackAlignment(
        chiplet, Orient::r0, 2.0, 3.0, Orient::r0);
    EXPECT_TRUE(normal.aligned);

    const auto on_mirrored_iod = plan.checkStackAlignment(
        chiplet, Orient::r0, 2.0, 3.0, Orient::mirrored);
    EXPECT_TRUE(on_mirrored_iod.aligned);
    EXPECT_EQ(normal.pads_checked, on_mirrored_iod.pads_checked);
}

/**
 * The full MI300 assembly matrix: the paper pairs rotated chiplets
 * with rotated IOD instances (one XCD per IOD is rotated 180°) and
 * mirror-redundant TSVs cover the mirrored instances. Sweep every
 * IOD orientation with the correspondingly placed chiplet.
 */
class AssemblyMatrix : public ::testing::TestWithParam<Orient>
{
};

TEST_P(AssemblyMatrix, ChipletAlignsOnEveryIodInstance)
{
    const Orient iod_o = GetParam();
    const auto chiplet = makeChiplet();
    const auto plan = makeIodPlan(true);

    // The chiplet is never mirrored (no mirrored XCD masks exist);
    // rotated IOD instances carry a rotated chiplet at the rotated
    // offset, mirrored instances carry the unrotated chiplet at the
    // original offset (redundant TSVs absorb the mirror).
    Orient chip_o = Orient::r0;
    double ox = 2.0, oy = 3.0;
    if (iod_o == Orient::r180 || iod_o == Orient::mirroredR180) {
        chip_o = Orient::r180;
        ox = plan.width() - 2.0 - chiplet.width();
        oy = plan.height() - 3.0 - chiplet.height();
    }
    const auto res =
        plan.checkStackAlignment(chiplet, chip_o, ox, oy, iod_o);
    EXPECT_TRUE(res.aligned) << orientName(iod_o);
}

INSTANTIATE_TEST_SUITE_P(AllIodOrients, AssemblyMatrix,
                         ::testing::ValuesIn(allOrients));

TEST(Alignment, RedundancyAtMostDoublesSites)
{
    auto plan = makeIodPlan(false);
    const auto before = plan.numSites();
    auto plan_r = makeIodPlan(true);
    EXPECT_GT(plan_r.numSites(), before);
    EXPECT_LE(plan_r.numSites(), 2 * before);
}

TEST(Floorplan, RejectsOutOfBounds)
{
    Floorplan fp({0, 0, 10, 10});
    EXPECT_THROW(fp.add("big", {5, 5, 10, 10}, RegionKind::compute),
                 std::runtime_error);
}

TEST(Floorplan, DetectsOverlaps)
{
    Floorplan fp({0, 0, 10, 10});
    fp.add("a", {0, 0, 5, 5}, RegionKind::compute);
    fp.add("b", {4, 4, 5, 5}, RegionKind::cache);
    EXPECT_FALSE(fp.overlapFree());
    EXPECT_EQ(fp.overlaps().size(), 1u);
}

TEST(Floorplan, UtilizationExcludesUnused)
{
    Floorplan fp({0, 0, 10, 10});
    fp.add("a", {0, 0, 5, 10}, RegionKind::compute);
    fp.add("waste", {5, 0, 5, 10}, RegionKind::unused);
    EXPECT_DOUBLE_EQ(fp.utilization(), 0.5);
}

TEST(Floorplan, FindAndByKind)
{
    Floorplan fp({0, 0, 10, 10});
    fp.add("a", {0, 0, 2, 2}, RegionKind::compute);
    fp.add("b", {3, 3, 2, 2}, RegionKind::compute);
    fp.add("c", {6, 6, 2, 2}, RegionKind::memory);
    EXPECT_NE(fp.find("a"), nullptr);
    EXPECT_EQ(fp.find("zz"), nullptr);
    EXPECT_EQ(fp.byKind(RegionKind::compute).size(), 2u);
}

TEST(PowerDelivery, CapacityCheck)
{
    PowerDeliveryModel pdn(0.75);
    // Paper Sec. V.D: 1.5 A/mm^2 TSV grid + 0.5 A/mm^2 microbumps.
    pdn.addPath({"tsv_grid", 100.0, 1.5, 0.05});
    pdn.addPath({"ubump", 100.0, 0.5, 0.1});

    const auto ok = pdn.check("tsv_grid", 100.0);    // 133 A demand
    EXPECT_TRUE(ok.ok);
    EXPECT_NEAR(ok.demand_a, 133.3, 0.1);
    EXPECT_DOUBLE_EQ(ok.capacity_a, 150.0);

    const auto bad = pdn.check("ubump", 100.0);      // only 50 A
    EXPECT_FALSE(bad.ok);
}

TEST(PowerDelivery, I2rLossGrowsQuadratically)
{
    PowerDeliveryModel pdn(1.0);
    pdn.addPath({"p", 1000.0, 10.0, 1.0});
    const auto a = pdn.check("p", 10.0);
    const auto b = pdn.check("p", 20.0);
    EXPECT_NEAR(b.i2r_loss_w / a.i2r_loss_w, 4.0, 1e-9);
}

TEST(PowerDelivery, UnknownPathFatal)
{
    PowerDeliveryModel pdn(1.0);
    EXPECT_THROW(pdn.check("nope", 1.0), std::runtime_error);
}

TEST(Footprint, BankOutsideDieRejected)
{
    ChipletFootprint fp("die", 5, 5);
    EXPECT_THROW(
        fp.addBank({"bad", {4, 4, 2, 2}, 0.5}),
        std::runtime_error);
}

TEST(Footprint, PlacedOutlineTransforms)
{
    ChipletFootprint fp("die", 6, 4);
    PlacedChiplet placed{&fp,
                         Transform(6, 4, Orient::r180, 10, 20)};
    const Rect out = placed.placedOutline();
    EXPECT_TRUE(nearEq(out.x, 10));
    EXPECT_TRUE(nearEq(out.y, 20));
    EXPECT_TRUE(nearEq(out.w, 6));
    EXPECT_TRUE(nearEq(out.h, 4));
}
