/**
 * @file
 * Tests for workload-measured utilization extraction and its
 * coupling to the power governor (Fig. 12 driven by real runs).
 */

#include <gtest/gtest.h>

#include "core/apu_system.hh"
#include "power/governor.hh"
#include "soc/utilization.hh"
#include "workloads/generators.hh"

using namespace ehpsim;
using namespace ehpsim::soc;

TEST(Utilization, ModelMirrorsPackageComposition)
{
    SimObject root(nullptr, "root");
    core::ApuSystem sys(mi300aConfig());
    auto *pm = makePowerModelFor(&root, sys.package());
    // 6 XCDs + 3 CCDs + 6 shared components.
    EXPECT_EQ(pm->components().size(), 6u + 3u + 6u);
    EXPECT_DOUBLE_EQ(pm->tdp(), 550.0);
    delete pm;
}

TEST(Utilization, VectorParallelsModel)
{
    SimObject root(nullptr, "root");
    core::ApuSystem sys(mi300aConfig());
    auto w = workloads::streamTriad(1 << 17);
    w.phases[0].grid_workgroups = 128;
    const auto rep = sys.run(w);
    auto *pm = makePowerModelFor(&root, sys.package());
    const auto util = measuredUtilization(
        sys.package(), ticksFromSeconds(rep.total_s));
    EXPECT_EQ(util.size(), pm->components().size());
    for (double u : util) {
        EXPECT_GE(u, 0.0);
        EXPECT_LE(u, 1.0);
    }
    delete pm;
}

TEST(Utilization, IdlePackageReportsLowUtilization)
{
    SimObject root(nullptr, "root");
    core::ApuSystem sys(mi300aConfig());
    const auto util =
        measuredUtilization(sys.package(), ticksFromSeconds(1e-3));
    // Nothing ran: XCD/CCD/memory utilizations are zero.
    for (unsigned i = 0; i < 9; ++i)
        EXPECT_DOUBLE_EQ(util[i], 0.0);
}

TEST(Utilization, MemoryBoundRunLoadsHbmMoreThanCompute)
{
    SimObject root(nullptr, "root");
    core::ApuSystem sys(mi300aConfig());
    auto w = workloads::streamTriad(1 << 19);
    w.phases[0].grid_workgroups = 512;
    const auto rep = sys.run(w);
    const auto util = measuredUtilization(
        sys.package(), ticksFromSeconds(rep.total_s));
    const unsigned hbm_idx = 6 + 3 + 3;     // after xcds+ccds+cache+fabric+usr
    const double hbm = util[hbm_idx];
    EXPECT_GT(hbm, 0.3);
}

TEST(Utilization, GovernorAcceptsMeasuredVector)
{
    SimObject root(nullptr, "root");
    core::ApuSystem sys(mi300aConfig());
    auto w = workloads::streamTriad(1 << 17);
    w.phases[0].grid_workgroups = 128;
    const auto rep = sys.run(w);
    auto *pm = makePowerModelFor(&root, sys.package());
    power::PowerGovernor gov(&root, "gov", pm);
    const auto alloc = gov.allocate(measuredUtilization(
        sys.package(), ticksFromSeconds(rep.total_s)));
    EXPECT_LE(alloc.total, pm->tdp() + 1e-6);
    EXPECT_GE(alloc.total, pm->idlePower() - 1e-6);
    delete pm;
}

TEST(Utilization, ZeroSpanFatal)
{
    SimObject root(nullptr, "root");
    core::ApuSystem sys(mi300aConfig());
    EXPECT_THROW(measuredUtilization(sys.package(), 0),
                 std::runtime_error);
}

TEST(Utilization, WorksForMi300xToo)
{
    SimObject root(nullptr, "root");
    core::ApuSystem sys(mi300xConfig());
    auto *pm = makePowerModelFor(&root, sys.package());
    EXPECT_EQ(pm->components().size(), 8u + 0u + 6u);
    auto w = workloads::streamTriad(1 << 17);
    w.phases[0].grid_workgroups = 128;
    const auto rep = sys.run(w);
    const auto util = measuredUtilization(
        sys.package(), ticksFromSeconds(rep.total_s));
    EXPECT_EQ(util.size(), pm->components().size());
    delete pm;
}
