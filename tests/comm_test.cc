/**
 * @file
 * Tests for the collective-communication engine: algorithmic
 * bandwidth against analytic bounds, link contention between
 * concurrent collectives, algorithm auto-selection, and determinism
 * of collective sweeps under worker-pool parallelism.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "comm/comm_group.hh"
#include "sim/rng.hh"
#include "soc/node_topology.hh"
#include "sweep/sweep_runner.hh"

using namespace ehpsim;
using namespace ehpsim::comm;
using namespace ehpsim::soc;

namespace
{

/** Per-direction bandwidth of a quad-node socket pair (2x x16). */
constexpr double quadPairBw = 128e9;

/** Fine chunking keeps pipeline fill/drain small vs. total time. */
CommParams
fineGrained()
{
    CommParams p;
    p.chunk_bytes = 1 * MiB;
    return p;
}

/** A 4-socket node connected only as a ring (no diagonals). */
std::unique_ptr<NodeTopology>
makeRingOnlyQuad(SimObject *root)
{
    auto node = std::make_unique<NodeTopology>(root, "ring_quad");
    for (unsigned i = 0; i < 4; ++i)
        node->addSocket("s" + std::to_string(i), 8);
    for (unsigned i = 0; i < 4; ++i)
        node->connect(i, (i + 1) % 4, 2, false);
    return node;
}

/** Run one all-reduce on a fresh quad node; @return the op. */
OpHandle
quadAllReduce(std::uint64_t bytes, Algorithm algo)
{
    SimObject root(nullptr, "root");
    auto node = NodeTopology::mi300aQuadNode(&root);
    EventQueue eq;
    CommGroup group(node.get(), "comm", node->network(),
                    node->deviceRanks(), &eq, fineGrained());
    auto op = group.allReduce(0, bytes, algo);
    group.waitAll();
    return op;
}

} // anonymous namespace

// ---------------------------------------------------------------------
// Algorithmic bandwidth vs. analytic bounds
// ---------------------------------------------------------------------

TEST(CommAllReduce, RingMatchesAlgbwBound)
{
    // Ring all-reduce moves 2(N-1)/N of the buffer over every ring
    // link, so algbw is bounded by link_bw * N / (2(N-1)).
    const std::uint64_t bytes = 64 * MiB;
    const auto op = quadAllReduce(bytes, Algorithm::ring);
    ASSERT_TRUE(op->done());
    EXPECT_EQ(op->algorithm(), Algorithm::ring);

    const double bound = quadPairBw * 4.0 / (2.0 * 3.0);
    EXPECT_LT(op->algoBandwidth(), 1.02 * bound);
    EXPECT_GT(op->algoBandwidth(), 0.80 * bound);

    // 2(N-1)/N scaling, exactly: bytes * hops placed on links.
    EXPECT_EQ(op->linkBytes(), 6 * bytes);
}

TEST(CommAllReduce, DirectBeatsRingOnFullyConnected)
{
    // Direct reduce-scatter + all-gather drives all N-1 dedicated
    // links per rank in parallel: algbw bound = link_bw * N / 2.
    const std::uint64_t bytes = 64 * MiB;
    const auto ring = quadAllReduce(bytes, Algorithm::ring);
    const auto direct = quadAllReduce(bytes, Algorithm::direct);
    ASSERT_TRUE(direct->done());

    const double bound = quadPairBw * 4.0 / 2.0;
    EXPECT_LT(direct->algoBandwidth(), 1.02 * bound);
    EXPECT_GT(direct->algoBandwidth(), 0.80 * bound);

    // Same total traffic as the ring, spread over 3x the links.
    EXPECT_EQ(direct->linkBytes(), 6 * bytes);
    EXPECT_GT(direct->algoBandwidth(), 2.0 * ring->algoBandwidth());
}

TEST(CommAllReduce, SecondsAndTicksAgree)
{
    const auto op = quadAllReduce(8 * MiB, Algorithm::ring);
    EXPECT_GT(op->finishTick(), op->startTick());
    EXPECT_DOUBLE_EQ(op->seconds(),
                     secondsFromTicks(op->finishTick() -
                                      op->startTick()));
}

// ---------------------------------------------------------------------
// Contention: concurrent collectives on shared links
// ---------------------------------------------------------------------

TEST(CommContention, ConcurrentAllReducesSlowEachOther)
{
    const std::uint64_t bytes = 16 * MiB;
    const auto solo = quadAllReduce(bytes, Algorithm::ring);
    const double t_solo = solo->seconds();
    ASSERT_GT(t_solo, 0.0);

    SimObject root(nullptr, "root");
    auto node = NodeTopology::mi300aQuadNode(&root);
    EventQueue eq;
    CommGroup group(node.get(), "comm", node->network(),
                    node->deviceRanks(), &eq, fineGrained());
    auto a = group.allReduce(0, bytes, Algorithm::ring);
    auto b = group.allReduce(0, bytes, Algorithm::ring);
    group.waitAll();
    ASSERT_TRUE(a->done());
    ASSERT_TRUE(b->done());

    // Both contend for the same ring links: each must be slower
    // than when run alone, and together they cannot beat 2x the
    // solo traffic through the same bottleneck.
    EXPECT_GT(a->seconds(), 1.4 * t_solo);
    EXPECT_GT(b->seconds(), 1.4 * t_solo);
    const double makespan = secondsFromTicks(
        std::max(a->finishTick(), b->finishTick()));
    EXPECT_GT(makespan, 1.8 * t_solo);
    EXPECT_LT(makespan, 2.6 * t_solo);
}

TEST(CommContention, DisjointPairsDoNotContend)
{
    // sendRecv 0->1 and 2->3 use disjoint dedicated links: running
    // them together costs the same as one alone.
    const std::uint64_t bytes = 32 * MiB;
    Tick t_solo = 0;
    {
        SimObject root(nullptr, "root");
        auto node = NodeTopology::mi300aQuadNode(&root);
        EventQueue eq;
        CommGroup group(node.get(), "comm", node->network(),
                        node->deviceRanks(), &eq);
        auto op = group.sendRecv(0, 0, 1, bytes);
        group.waitAll();
        t_solo = op->finishTick();
    }
    SimObject root(nullptr, "root");
    auto node = NodeTopology::mi300aQuadNode(&root);
    EventQueue eq;
    CommGroup group(node.get(), "comm", node->network(),
                    node->deviceRanks(), &eq);
    auto a = group.sendRecv(0, 0, 1, bytes);
    auto b = group.sendRecv(0, 2, 3, bytes);
    group.waitAll();
    EXPECT_EQ(a->finishTick(), t_solo);
    EXPECT_EQ(b->finishTick(), t_solo);
}

// ---------------------------------------------------------------------
// Algorithm selection and basic collective semantics
// ---------------------------------------------------------------------

TEST(CommChoose, SizeAndTopologyDriveSelection)
{
    SimObject root(nullptr, "root");
    EventQueue eq;

    auto quad = NodeTopology::mi300aQuadNode(&root);
    CommGroup on_full(quad.get(), "comm", quad->network(),
                      quad->deviceRanks(), &eq);
    EXPECT_TRUE(on_full.fullyConnected());
    // Fully connected: direct wins at every size.
    EXPECT_EQ(on_full.choose(Collective::allReduce, 1 * KiB),
              Algorithm::direct);
    EXPECT_EQ(on_full.choose(Collective::allReduce, 256 * MiB),
              Algorithm::direct);

    auto ring = makeRingOnlyQuad(&root);
    CommGroup on_ring(ring.get(), "comm", ring->network(),
                      ring->deviceRanks(), &eq);
    EXPECT_FALSE(on_ring.fullyConnected());
    // Sparse: small payloads go direct (latency), large go ring.
    EXPECT_EQ(on_ring.choose(Collective::allReduce, 1 * KiB),
              Algorithm::direct);
    EXPECT_EQ(on_ring.choose(Collective::allReduce, 256 * MiB),
              Algorithm::ring);
    EXPECT_EQ(on_ring.choose(Collective::sendRecv, 256 * MiB),
              Algorithm::direct);

    const auto op = on_ring.allReduce(0, 256 * MiB);
    on_ring.waitAll();
    EXPECT_EQ(op->algorithm(), Algorithm::ring);
}

TEST(CommCollectives, EveryKindCompletesAndCounts)
{
    SimObject root(nullptr, "root");
    auto node = NodeTopology::mi300aQuadNode(&root);
    EventQueue eq;
    CommGroup group(node.get(), "comm", node->network(),
                    node->deviceRanks(), &eq);

    const std::uint64_t bytes = 8 * MiB;
    auto ag = group.allGather(0, bytes);
    auto rs = group.reduceScatter(0, bytes);
    auto bc = group.broadcast(0, 2, bytes);
    auto aa = group.allToAll(0, bytes);
    auto sr = group.sendRecv(0, 1, 3, bytes);
    group.waitAll();

    for (const auto &op : {ag, rs, bc, aa, sr})
        EXPECT_TRUE(op->done());
    EXPECT_DOUBLE_EQ(group.ops_completed.value(), 5.0);
    EXPECT_DOUBLE_EQ(group.allgather_bytes.value(),
                     static_cast<double>(bytes));
    EXPECT_DOUBLE_EQ(group.reduce_scatter_bytes.value(),
                     static_cast<double>(bytes));
    EXPECT_DOUBLE_EQ(group.broadcast_bytes.value(),
                     static_cast<double>(bytes));
    // all-to-all: every rank sends bytes to every other rank.
    EXPECT_DOUBLE_EQ(group.all_to_all_bytes.value(),
                     static_cast<double>(12 * bytes));
    EXPECT_DOUBLE_EQ(group.sendrecv_bytes.value(),
                     static_cast<double>(bytes));
    EXPECT_GT(group.maxLinkUtilization(), 0.0);
    EXPECT_GE(group.maxLinkUtilization(),
              group.avgLinkUtilization());
}

TEST(CommCollectives, SmallSendRecvPaysLinkLatency)
{
    SimObject root(nullptr, "root");
    auto node = NodeTopology::mi300aQuadNode(&root);
    EventQueue eq;
    CommGroup group(node.get(), "comm", node->network(),
                    node->deviceRanks(), &eq);
    auto op = group.sendRecv(0, 0, 1, 64);
    group.waitAll();
    // One hop on a 30 ns serdes IF link dominates 64 B of
    // serialization.
    EXPECT_GE(op->finishTick(), 30'000u);
    EXPECT_LT(op->finishTick(), 40'000u);
}

TEST(CommCollectives, ZeroBytesAndBadRanksAreHandled)
{
    SimObject root(nullptr, "root");
    auto node = NodeTopology::mi300aQuadNode(&root);
    EventQueue eq;
    CommGroup group(node.get(), "comm", node->network(),
                    node->deviceRanks(), &eq);
    auto op = group.allReduce(1000, 0);
    EXPECT_TRUE(op->done());
    EXPECT_EQ(op->finishTick(), op->startTick());
    EXPECT_THROW(group.broadcast(0, 7, 1 * MiB),
                 std::runtime_error);
    EXPECT_THROW(group.sendRecv(0, 0, 9, 1 * MiB),
                 std::runtime_error);
}

TEST(CommFaults, RouteCacheFollowsMidSimReroute)
{
    SimObject root(nullptr, "root");
    auto node = makeRingOnlyQuad(&root);
    EventQueue eq;
    CommGroup group(node.get(), "comm", node->network(),
                    node->deviceRanks(), &eq, fineGrained());
    const auto ranks = node->deviceRanks();
    // Warm the group's per-pair LinkRoute cache with a collective.
    auto first = group.allReduce(0, 4 * MiB, Algorithm::ring);
    group.waitAll();
    ASSERT_TRUE(first->done());
    // Fail the ranks[0] <-> ranks[1] ring link mid-sim. Every cached
    // LinkRoute pointer in the group is stale the moment the route
    // epoch moves; the next collective must re-resolve and pipeline
    // the long way round instead of replaying a dead route.
    node->network()->killLink(ranks[0], ranks[1]);
    EXPECT_EQ(node->network()->hopCount(ranks[0], ranks[1]), 3u);
    auto second = group.sendRecv(eq.curTick(), 0, 1, 4 * MiB);
    group.waitAll();
    ASSERT_TRUE(second->done());
    // 4 MiB rerouted over the three surviving ring hops.
    EXPECT_EQ(second->linkBytes(), 3ull * 4 * MiB);
}

TEST(CommGroupCtor, RejectsBadRankSets)
{
    SimObject root(nullptr, "root");
    auto node = NodeTopology::mi300aQuadNode(&root);
    EventQueue eq;
    EXPECT_THROW(CommGroup(node.get(), "c0", node->network(), {},
                           &eq),
                 std::runtime_error);
    EXPECT_THROW(CommGroup(node.get(), "c1", node->network(),
                           {0, 1, 0}, &eq),
                 std::runtime_error);
    EXPECT_THROW(CommGroup(node.get(), "c2", node->network(),
                           {0, 99}, &eq),
                 std::runtime_error);
}

// ---------------------------------------------------------------------
// NodeTopology integration
// ---------------------------------------------------------------------

TEST(CommTopology, CommGroupFreezesTopology)
{
    SimObject root(nullptr, "root");
    auto node = NodeTopology::mi300aQuadNode(&root);
    auto *cg = node->commGroup();
    ASSERT_NE(cg, nullptr);
    EXPECT_EQ(cg->numRanks(), 4u);
    EXPECT_EQ(node->commGroup(), cg);
    EXPECT_THROW(node->addSocket("late", 8), std::runtime_error);
    EXPECT_THROW(node->connect(0, 1, 1), std::runtime_error);
}

TEST(CommTopology, OctoCommGroupExcludesHosts)
{
    SimObject root(nullptr, "root");
    auto node = NodeTopology::mi300xOctoNode(&root);
    EXPECT_EQ(node->numEndpoints(), 10u);
    EXPECT_FALSE(node->isHost(0));
    EXPECT_TRUE(node->isHost(8));
    EXPECT_TRUE(node->isHost(9));
    EXPECT_EQ(node->commGroup()->numRanks(), 8u);
    EXPECT_TRUE(node->commGroup()->fullyConnected());
}

TEST(CommTopology, AllToAllBackedByCommEngine)
{
    SimObject root(nullptr, "root");
    auto node = NodeTopology::mi300aQuadNode(&root);
    const Tick done = node->allToAll(0, 16 * MiB);
    EXPECT_GT(done, 0u);
    EXPECT_DOUBLE_EQ(node->commGroup()->ops_completed.value(), 1.0);
    // Repeated exchanges keep advancing the comm clock.
    const Tick done2 = node->allToAll(0, 16 * MiB);
    EXPECT_GT(done2, done);
}

// ---------------------------------------------------------------------
// Determinism: collective sweeps under a worker pool
// ---------------------------------------------------------------------

namespace
{

std::string
runCollectiveSweep(unsigned jobs)
{
    sweep::SweepRunner runner(jobs);
    const std::uint64_t sizes[] = {4 * MiB, 8 * MiB, 16 * MiB,
                                   32 * MiB};
    for (const std::uint64_t bytes : sizes) {
        for (const Algorithm algo :
             {Algorithm::ring, Algorithm::direct}) {
            const std::string name =
                std::string("allreduce/") + algorithmName(algo) +
                "/" + std::to_string(bytes);
            runner.addJob(name, [bytes, algo](json::JsonWriter &jw) {
                const auto op = quadAllReduce(bytes, algo);
                jw.beginObject();
                jw.kv("bytes", static_cast<double>(bytes));
                jw.kv("algorithm", algorithmName(op->algorithm()));
                jw.kv("finish_ticks",
                      static_cast<double>(op->finishTick()));
                jw.kv("algbw_gbps", op->algoBandwidth() / 1e9);
                jw.endObject();
            });
        }
    }
    const auto results = runner.run();
    std::ostringstream os;
    sweep::SweepRunner::dumpJson(os, "comm_sweep", results);
    return os.str();
}

} // anonymous namespace

TEST(CommSweep, WorkerCountDoesNotChangeJson)
{
    const std::string serial = runCollectiveSweep(1);
    const std::string parallel = runCollectiveSweep(4);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, parallel);
}

namespace
{

/**
 * A sweep where every job runs collectives on its own quad node and
 * serializes the full stat tree — CommGroup counters, Formula stats
 * (avg/max link busy fractions), and the per-link stats underneath.
 * This is the stat-aggregation path the TSan CI gate exercises at 8
 * concurrent workers.
 */
std::string
runStatAggregationSweep(unsigned jobs)
{
    sweep::SweepRunner runner(jobs);
    for (unsigned j = 0; j < 16; ++j) {
        const std::uint64_t bytes = (4 + j % 4) * MiB;
        runner.addJob(
            "stats/" + std::to_string(j),
            [bytes](json::JsonWriter &jw) {
                SimObject root(nullptr, "root");
                auto node = NodeTopology::mi300aQuadNode(&root);
                EventQueue eq;
                CommGroup group(node.get(), "comm", node->network(),
                                node->deviceRanks(), &eq,
                                fineGrained());
                group.allReduce(0, bytes, Algorithm::ring);
                group.waitAll();
                group.allGather(eq.curTick(), bytes,
                                Algorithm::direct);
                group.waitAll();
                jw.beginObject();
                jw.key("comm");
                group.dumpJsonStats(jw);
                jw.key("node");
                node->dumpJsonStats(jw);
                jw.endObject();
            });
    }
    const auto results = runner.run();
    std::ostringstream os;
    sweep::SweepRunner::dumpJson(os, "comm_stat_aggregation", results);
    return os.str();
}

} // anonymous namespace

TEST(CommSweep, StatAggregationAtEightWorkersIsDeterministic)
{
    const std::string serial = runStatAggregationSweep(1);
    const std::string parallel = runStatAggregationSweep(8);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, parallel);
}

namespace
{

/**
 * The retry/backoff path under a worker pool: every job injects
 * transient chunk faults from its own seeded Rng and serializes the
 * retry counters and distribution alongside the op timing. Any
 * cross-worker state in the retry machinery shows up as a byte diff
 * (and as a TSan report in the CI gate).
 */
std::string
runRetrySweep(unsigned jobs)
{
    sweep::SweepRunner runner(jobs);
    for (unsigned j = 0; j < 12; ++j) {
        const std::uint64_t bytes = (8 + 4 * (j % 3)) * MiB;
        runner.addJob(
            "retry/" + std::to_string(j), [j, bytes](json::JsonWriter &jw) {
                SimObject root(nullptr, "root");
                auto node = NodeTopology::mi300aQuadNode(&root);
                EventQueue eq;
                CommGroup group(node.get(), "comm", node->network(),
                                node->deviceRanks(), &eq,
                                fineGrained());
                group.setChunkFaultHook(
                    [j](const CommGroup::ChunkAttempt &a) {
                        return counterHashUnit(1000 + j, a.op_id,
                                               a.task_index,
                                               a.attempt) < 0.05;
                    });
                auto op =
                    group.allReduce(0, bytes, Algorithm::ring);
                group.waitAll();
                jw.beginObject();
                jw.kv("finish_ticks",
                      static_cast<double>(op->finishTick()));
                jw.kv("chunk_retries", group.chunk_retries.value());
                jw.kv("retry_wait_ticks",
                      group.retry_wait_ticks.value());
                jw.key("comm");
                group.dumpJsonStats(jw);
                jw.endObject();
            });
    }
    const auto results = runner.run();
    std::ostringstream os;
    sweep::SweepRunner::dumpJson(os, "comm_retry_sweep", results);
    return os.str();
}

} // anonymous namespace

TEST(CommSweep, RetryPathAtEightWorkersIsDeterministic)
{
    const std::string serial = runRetrySweep(1);
    const std::string parallel = runRetrySweep(8);
    const std::string again = runRetrySweep(8);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, parallel);
    EXPECT_EQ(parallel, again);
}
