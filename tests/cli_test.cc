/**
 * @file
 * End-to-end checks of ehpsim_cli flag handling that unit tests
 * can't see: `sweep --pdes` must be rejected with a clear error (it
 * was silently accepted and ignored through PR 9), and the comm
 * checkpoint/fork path must produce byte-identical JSON to the
 * straight-through run while actually sharing the warmup (DESIGN.md
 * §16). The binary comes in via EHPSIM_CLI_BIN.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace
{

struct CmdResult
{
    int exit_code = -1;
    std::string stderr_text;
};

/** Run the CLI with @p args; capture exit code and stderr. */
CmdResult
runCli(const std::string &args, const std::string &tag)
{
    const std::string err_path =
        std::string("cli_test_") + tag + ".err";
    const std::string cmd = std::string(EHPSIM_CLI_BIN) + " " + args +
                            " > /dev/null 2> " + err_path;
    CmdResult res;
    const int rc = std::system(cmd.c_str());
    res.exit_code = WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
    std::ifstream in(err_path);
    std::ostringstream ss;
    ss << in.rdbuf();
    res.stderr_text = ss.str();
    std::remove(err_path.c_str());
    return res;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "missing " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

} // anonymous namespace

TEST(CliSweep, PdesFlagIsRejectedWithClearError)
{
    const auto res = runCli(
        "sweep --products mi300a --workloads triad --pdes 4",
        "sweep_pdes");
    EXPECT_EQ(res.exit_code, 2);
    EXPECT_NE(res.stderr_text.find("--pdes is not supported"),
              std::string::npos)
        << res.stderr_text;
    // The error must point at the supported alternatives.
    EXPECT_NE(res.stderr_text.find("--jobs"), std::string::npos)
        << res.stderr_text;
}

TEST(CliSweep, PlainSweepStillWorks)
{
    const auto res = runCli(
        "sweep --products mi300a --workloads triad "
        "--json cli_test_sweep.json",
        "sweep_ok");
    EXPECT_EQ(res.exit_code, 0) << res.stderr_text;
    EXPECT_FALSE(slurp("cli_test_sweep.json").empty());
    std::remove("cli_test_sweep.json");
}

TEST(CliComm, ForkedWarmupSweepIsByteIdentical)
{
    const std::string common =
        "comm --topology octo --collective all_reduce "
        "--algos ring,direct --sizes 1M,4M --warmup 2 ";
    const auto straight =
        runCli(common + "--json cli_test_straight.json", "straight");
    ASSERT_EQ(straight.exit_code, 0) << straight.stderr_text;
    const auto forked = runCli(
        common + "--fork --jobs 4 --json cli_test_fork.json", "fork");
    ASSERT_EQ(forked.exit_code, 0) << forked.stderr_text;

    EXPECT_EQ(slurp("cli_test_straight.json"),
              slurp("cli_test_fork.json"));
    std::remove("cli_test_straight.json");
    std::remove("cli_test_fork.json");
}

TEST(CliComm, CheckpointFileSavesThenLoads)
{
    std::remove("cli_test_warm.ckpt");
    const std::string common =
        "comm --topology octo --algos ring --sizes 1M --warmup 2 "
        "--fork --checkpoint cli_test_warm.ckpt ";
    const auto save =
        runCli(common + "--json cli_test_c1.json", "ckpt_save");
    ASSERT_EQ(save.exit_code, 0) << save.stderr_text;
    EXPECT_NE(save.stderr_text.find("checkpoint saved"),
              std::string::npos)
        << save.stderr_text;

    const auto load =
        runCli(common + "--json cli_test_c2.json", "ckpt_load");
    ASSERT_EQ(load.exit_code, 0) << load.stderr_text;
    EXPECT_NE(load.stderr_text.find("loading warmup checkpoint"),
              std::string::npos)
        << load.stderr_text;

    EXPECT_EQ(slurp("cli_test_c1.json"), slurp("cli_test_c2.json"));
    std::remove("cli_test_warm.ckpt");
    std::remove("cli_test_c1.json");
    std::remove("cli_test_c2.json");
}

TEST(CliComm, ForkWithoutWarmupIsRejected)
{
    const auto res = runCli(
        "comm --topology octo --algos ring --sizes 1M --fork",
        "fork_bare");
    EXPECT_NE(res.exit_code, 0);
    EXPECT_NE(res.stderr_text.find("--fork needs a warmup prefix"),
              std::string::npos)
        << res.stderr_text;
}

TEST(CliServe, CheckpointAtIsByteIdentical)
{
    const std::string common =
        "serve --devices mi300x --loads 1.0 --tp 2 --requests 6 "
        "--seed 42 --input-tokens 256 --output-tokens 32 ";
    const auto straight =
        runCli(common + "--json cli_test_s1.json", "serve_straight");
    ASSERT_EQ(straight.exit_code, 0) << straight.stderr_text;
    const auto forked = runCli(common +
                                   "--checkpoint-at 500000000000 "
                                   "--json cli_test_s2.json",
                               "serve_ckpt");
    ASSERT_EQ(forked.exit_code, 0) << forked.stderr_text;

    EXPECT_EQ(slurp("cli_test_s1.json"), slurp("cli_test_s2.json"));
    std::remove("cli_test_s1.json");
    std::remove("cli_test_s2.json");
}
