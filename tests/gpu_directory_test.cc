/**
 * @file
 * Tests for the GPU's simpler intra-socket MSI directory, including
 * the traffic comparison against the CPU-side MOESI probe filter
 * that motivates the paper's "slightly simpler protocol" remark.
 */

#include <gtest/gtest.h>

#include "coherence/gpu_directory.hh"
#include "coherence/probe_filter.hh"
#include "sim/rng.hh"

using namespace ehpsim;
using namespace ehpsim::coherence;

TEST(GpuDirectory, ColdReadInstallsSharedNotExclusive)
{
    SimObject root(nullptr, "root");
    GpuDirectory dir(&root, "dir");
    const auto out = dir.read(0, 0x1000);
    EXPECT_TRUE(out.data_from_memory);
    // The simpler protocol has no E state.
    EXPECT_EQ(dir.lineState(0x1000), State::shared);
}

TEST(GpuDirectory, WriteTakesModifiedAndInvalidates)
{
    SimObject root(nullptr, "root");
    GpuDirectory dir(&root, "dir");
    dir.read(0, 0x40);
    dir.read(1, 0x40);
    const auto out = dir.write(2, 0x40);
    EXPECT_EQ(out.invalidations, 2u);
    EXPECT_EQ(dir.lineState(0x40), State::modified);
    EXPECT_EQ(dir.holders(0x40), std::vector<AgentId>{2});
}

TEST(GpuDirectory, ReadOfModifiedWritesBackNoForwarding)
{
    SimObject root(nullptr, "root");
    GpuDirectory dir(&root, "dir");
    dir.write(0, 0x80);
    const auto out = dir.read(1, 0x80);
    // Simpler protocol: writeback + memory fetch, never a
    // cache-to-cache transfer (no Owned state).
    EXPECT_TRUE(out.writeback);
    EXPECT_TRUE(out.data_from_memory);
    EXPECT_FALSE(out.data_from_cache);
    EXPECT_EQ(dir.lineState(0x80), State::shared);
}

TEST(GpuDirectory, SilentUpgradeOfOwnModifiedLine)
{
    SimObject root(nullptr, "root");
    GpuDirectory dir(&root, "dir");
    dir.write(3, 0x100);
    const auto out = dir.write(3, 0x100);
    EXPECT_EQ(out.probes, 0u);
    EXPECT_FALSE(out.data_from_memory);
}

TEST(GpuDirectory, EvictionOfModifiedWritesBack)
{
    SimObject root(nullptr, "root");
    GpuDirectory dir(&root, "dir");
    dir.write(1, 0x200);
    const auto out = dir.evict(1, 0x200);
    EXPECT_TRUE(out.writeback);
    EXPECT_EQ(dir.lineState(0x200), State::invalid);
    EXPECT_EQ(dir.trackedLines(), 0u);
}

TEST(GpuDirectory, CleanEvictionIsSilent)
{
    SimObject root(nullptr, "root");
    GpuDirectory dir(&root, "dir");
    dir.read(0, 0x200);
    dir.read(1, 0x200);
    const auto out = dir.evict(0, 0x200);
    EXPECT_FALSE(out.writeback);
    EXPECT_EQ(dir.holders(0x200), std::vector<AgentId>{1});
}

class GpuDirectoryRandom
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(GpuDirectoryRandom, MsiInvariantsUnderRandomTraffic)
{
    SimObject root(nullptr, "root");
    GpuDirectory dir(&root, "dir");
    Rng rng(GetParam());
    for (int i = 0; i < 20000; ++i) {
        const AgentId agent = rng.nextBounded(6);   // six XCDs
        const Addr addr = rng.nextBounded(1 << 15);
        const auto op = rng.nextBounded(3);
        if (op == 0)
            dir.read(agent, addr);
        else if (op == 1)
            dir.write(agent, addr);
        else
            dir.evict(agent, addr);
        if (i % 500 == 0) {
            ASSERT_TRUE(dir.invariantsHold());
        }
    }
    EXPECT_TRUE(dir.invariantsHold());
}

INSTANTIATE_TEST_SUITE_P(Seeds, GpuDirectoryRandom,
                         ::testing::Values(5, 55, 555));

TEST(GpuDirectory, SimplerProtocolTradesWritebacksForStates)
{
    // The paper's contrast, made quantitative: run the identical
    // migratory sharing trace (each agent writes then the next
    // reads) through both protocols. MOESI forwards dirty data
    // cache-to-cache; MSI writes back to memory every time.
    SimObject root(nullptr, "root");
    ProbeFilter moesi(&root, "moesi", 0, 128);
    GpuDirectory msi(&root, "msi", 128);

    Rng rng(42);
    for (int i = 0; i < 5000; ++i) {
        const Addr addr = rng.nextBounded(1 << 13);
        const AgentId writer = rng.nextBounded(6);
        const AgentId reader = (writer + 1) % 6;
        moesi.write(writer, addr);
        moesi.read(reader, addr);
        msi.write(writer, addr);
        msi.read(reader, addr);
    }
    // MSI pushes far more data to memory...
    EXPECT_GT(msi.writebacks.value(),
              5.0 * (moesi.writebacks.value() + 1.0));
    // ...and fetches more from memory, because MOESI serves reads
    // from the owner's cache.
    EXPECT_GT(msi.memory_fetches.value(),
              2.0 * moesi.memory_fetches.value());
    EXPECT_GT(moesi.cache_transfers.value(), 0.0);
}
