/**
 * @file
 * Cross-module integration tests: full MI300A event-driven runs,
 * engine cross-validation, partitioning behaviour, and the
 * EHPv4-vs-MI300A comparison.
 */

#include <gtest/gtest.h>

#include "core/apu_system.hh"
#include "core/machine_model.hh"
#include "core/roofline.hh"
#include "sim/logging.hh"
#include "workloads/generators.hh"

using namespace ehpsim;
using namespace ehpsim::core;
using namespace ehpsim::workloads;

namespace
{

/** A triad sized to run quickly in the event engine. */
Workload
smallTriad()
{
    auto w = streamTriad(1 << 19);      // 4 MiB arrays
    w.phases[0].grid_workgroups = 512;
    return w;
}

} // anonymous namespace

TEST(Integration, Mi300aRunsTriadEndToEnd)
{
    ApuSystem sys(soc::mi300aConfig());
    const auto rep = sys.run(smallTriad());
    ASSERT_EQ(rep.phases.size(), 1u);
    EXPECT_GT(rep.total_s, 0.0);

    // The run must have moved at least the compulsory bytes through
    // the HBM channels.
    double channel_bytes = 0;
    for (unsigned c = 0; c < 128; ++c)
        channel_bytes += sys.package().channel(c)->bytes_served.value();
    EXPECT_GT(channel_bytes, 3.0 * (1 << 19) * 8 * 0.5);
}

TEST(Integration, EventBandwidthWithinPhysicalLimits)
{
    ApuSystem sys(soc::mi300aConfig());
    const auto w = smallTriad();
    const auto rep = sys.run(w);
    const double bytes = static_cast<double>(w.totalGpuBytes());
    const double achieved = bytes / rep.total_s;
    // Sanity bounds: below the cache peak, above a trivial floor.
    EXPECT_LT(achieved, 17.5e12);
    EXPECT_GT(achieved, 0.05e12);
}

TEST(Integration, EventAndRooflineAgreeOnOrdering)
{
    // Both engines must agree that MI300A finishes the same
    // memory-bound workload faster than MI250X.
    auto w = streamTriad(1 << 19);
    w.phases[0].grid_workgroups = 512;

    ApuSystem a(soc::mi300aConfig());
    ApuSystem b(soc::mi250xConfig());
    const auto ra = a.run(w);
    const auto rb = b.run(w);
    EXPECT_LT(ra.total_s, rb.total_s);

    const auto fa = RooflineEngine(mi300aModel()).run(w);
    const auto fb = RooflineEngine(mi250xNodeModel()).run(w);
    EXPECT_LT(fa.total_s, fb.total_s);
}

TEST(Integration, EnginesAgreeWithinBand)
{
    // The event engine includes caches, dispatch, and fabric; the
    // roofline is idealized. They should land within a small factor
    // on a bandwidth-bound kernel.
    auto w = streamTriad(1 << 20);
    w.phases[0].grid_workgroups = 1024;
    ApuSystem sys(soc::mi300aConfig());
    const auto ev = sys.run(w);
    auto m = mi300aModel();
    const auto rf = RooflineEngine(m).run(w);
    EXPECT_LT(ev.total_s / rf.total_s, 10.0);
    EXPECT_GT(ev.total_s / rf.total_s, 0.3);
}

TEST(Integration, PartitionedRunStillCompletes)
{
    ApuSystem sys(soc::mi300aConfig());
    auto w = smallTriad();
    const auto rep3 = sys.run(w, 3);
    EXPECT_GT(rep3.total_s, 0.0);
    // All six XCDs saw work even in 3-partition mode.
    for (unsigned x = 0; x < 6; ++x) {
        EXPECT_GT(
            sys.package().xcd(x)->workgroups_dispatched.value(), 0.0)
            << "xcd " << x;
    }
}

TEST(Integration, Mi300xSupportsEightPartitions)
{
    ApuSystem sys(soc::mi300xConfig());
    auto w = smallTriad();
    const auto rep = sys.run(w, 8);
    EXPECT_GT(rep.total_s, 0.0);
    for (unsigned x = 0; x < 8; ++x) {
        EXPECT_GT(
            sys.package().xcd(x)->workgroups_dispatched.value(), 0.0);
    }
}

TEST(Integration, Nps4ModeRuns)
{
    ApuSystem sys(soc::mi300xConfig(), mem::NumaMode::nps4);
    const auto rep = sys.run(smallTriad());
    EXPECT_GT(rep.total_s, 0.0);
}

TEST(Integration, CpuPhasesRunOnCcds)
{
    ApuSystem sys(soc::mi300aConfig());
    auto w = cfdSolver(100'000, 1);
    for (auto &p : w.phases)
        p.grid_workgroups = 256;
    const auto rep = sys.run(w);
    EXPECT_GT(rep.cpuSeconds(), 0.0);
    EXPECT_GT(rep.gpuSeconds(), 0.0);
}

TEST(Integration, FineGrainedOverlapShortensCoupledPhases)
{
    auto w = cfdSolver(200'000, 2);
    for (auto &p : w.phases)
        p.grid_workgroups = 256;
    ApuSystem fine(soc::mi300aConfig());
    ApuSystem coarse(soc::mi300aConfig());
    const auto rf = fine.run(w, 1,
                             hsa::DistributionPolicy::roundRobin,
                             true);
    const auto rc = coarse.run(w, 1,
                               hsa::DistributionPolicy::roundRobin,
                               false);
    EXPECT_LE(rf.total_s, rc.total_s);
}

TEST(Integration, DistributionPolicyChangesPlacement)
{
    ApuSystem rr(soc::mi300aConfig());
    ApuSystem blk(soc::mi300aConfig());
    auto w = smallTriad();
    rr.run(w, 1, hsa::DistributionPolicy::roundRobin);
    blk.run(w, 1, hsa::DistributionPolicy::blocked);
    // Both complete and both used every XCD (512 wgs over 6 XCDs).
    for (unsigned x = 0; x < 6; ++x) {
        EXPECT_GT(rr.package().xcd(x)->workgroups_dispatched.value(),
                  0.0);
        EXPECT_GT(blk.package().xcd(x)->workgroups_dispatched.value(),
                  0.0);
    }
}

TEST(Integration, InfinityCacheCapturesReuse)
{
    ApuSystem sys(soc::mi300aConfig());
    // Re-run the same small working set: second pass should hit.
    auto w = streamTriad(1 << 17, 4);   // 1 MiB arrays, 4 passes
    for (auto &p : w.phases)
        p.grid_workgroups = 256;
    sys.run(w);
    EXPECT_GT(sys.package().cacheHitRate(), 0.2);
}

TEST(Integration, UsrLinksCarryCrossIodTraffic)
{
    ApuSystem sys(soc::mi300aConfig());
    sys.run(smallTriad());
    auto *net = sys.package().network();
    double usr_bytes = 0;
    for (auto *l : net->allLinks()) {
        if (l->params().kind == fabric::LinkKind::usr)
            usr_bytes += l->bytes_moved.value();
    }
    // Interleaving guarantees most accesses cross IODs.
    EXPECT_GT(usr_bytes, 1e6);
}

TEST(Integration, WarnOnCpuWorkWithoutCcds)
{
    logging_detail::setQuiet(true);
    const auto before = logging_detail::warnCount();
    ApuSystem sys(soc::mi300xConfig());     // no CCDs
    auto w = cfdSolver(50'000, 1);
    for (auto &p : w.phases)
        p.grid_workgroups = 128;
    sys.run(w);
    EXPECT_GT(logging_detail::warnCount(), before);
}
