/**
 * @file
 * Shape and determinism checks for the kernel microbenchmark's JSON
 * output (bench/perf_kernel.cc).
 *
 * The bench measures wall time, which is inherently run-dependent, so
 * the contract is split: every value under a benchmark's
 * "deterministic" object must be byte-identical across runs, while
 * wall-dependent values may only ever appear under "wall". The test
 * runs the bench twice in quick mode and diffs the documents with the
 * wall-valued lines stripped.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace
{

/** Keys whose values depend on wall time, never on the simulation. */
const char *const wallKeys[] = {
    "best_seconds",
    "events_per_sec",
    "ops_per_sec",
};

std::string
runQuick(const std::string &json_path)
{
    const std::string cmd = std::string(EHPSIM_PERF_KERNEL_BIN) +
                            " --quick --repeat 1 --json " + json_path +
                            " > /dev/null 2>&1";
    const int rc = std::system(cmd.c_str());
    EXPECT_EQ(rc, 0) << "perf_kernel failed: " << cmd;
    std::ifstream in(json_path);
    EXPECT_TRUE(in.good()) << "missing " << json_path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** The document's lines with wall-valued ones removed. */
std::vector<std::string>
deterministicLines(const std::string &doc)
{
    std::vector<std::string> out;
    std::istringstream in(doc);
    std::string line;
    while (std::getline(in, line)) {
        bool wall = false;
        for (const char *key : wallKeys) {
            if (line.find(key) != std::string::npos) {
                wall = true;
                break;
            }
        }
        if (!wall)
            out.push_back(line);
    }
    return out;
}

} // anonymous namespace

TEST(PerfKernel, QuickJsonHasSchemaAndBenchmarks)
{
    const std::string doc = runQuick("perf_kernel_shape.json");
    EXPECT_NE(doc.find("\"schema\": \"ehpsim-bench-kernel-v1\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"quick\": true"), std::string::npos);
    for (const char *name :
         {"schedule_churn", "oneshot_storm", "oneshot_storm_pooled",
          "comm_allreduce_octo", "comm_allreduce_octo_pdes",
          "fault_storm", "checkpoint_fork"}) {
        EXPECT_NE(doc.find(std::string("\"name\": \"") + name + "\""),
                  std::string::npos)
            << "missing benchmark " << name;
    }
    // Every benchmark carries both sections, and the wall keys exist
    // (under "wall" only — determinism of the rest is checked below).
    EXPECT_NE(doc.find("\"deterministic\""), std::string::npos);
    EXPECT_NE(doc.find("\"wall\""), std::string::npos);
    for (const char *key : wallKeys)
        EXPECT_NE(doc.find(key), std::string::npos);
}

TEST(PerfKernel, QuickJsonDeterministicModuloWall)
{
    const std::string a = runQuick("perf_kernel_det_a.json");
    const std::string b = runQuick("perf_kernel_det_b.json");
    EXPECT_EQ(deterministicLines(a), deterministicLines(b))
        << "benchmark JSON differs beyond the wall-valued fields";
}

TEST(PerfKernel, FabricBenchCountersMatchGoldens)
{
    // Pin the fabric-bound benches' deterministic counters to golden
    // values. Run-to-run determinism (the test above) would not
    // catch a systematic timing change — e.g. a fast-path rewrite
    // that silently alters occupancy completion ticks or the chunk
    // DAG. These values encode the exact simulated schedule; a
    // legitimate model change must update them consciously,
    // alongside BENCH_kernel.json.
    const std::string doc = runQuick("perf_kernel_golden.json");
    const struct
    {
        const char *key;
        const char *value;
    } goldens[] = {
        // comm_allreduce_octo, quick: 1 iteration of 16 MiB ring +
        // direct all-reduce over the octo node, 1 MiB chunks.
        {"events_processed", "448"},
        {"final_tick", "491550000"},
        {"link_bytes", "469762048"},
        // fault_storm, quick: seeded fault plan over the quad node.
        // (Re-pinned when the transient-fault draw moved from a
        // sequential Rng stream to the counter-based hash of
        // (seed, op, task, attempt) — the schedule-keyed model that
        // is identical under serial and PDES execution.)
        {"events_processed", "237"},
        {"final_tick", "1186732000"},
        {"chunk_retries", "11"},
        {"faults_injected", "13"},
    };
    for (const auto &g : goldens) {
        const std::string needle =
            std::string("\"") + g.key + "\": " + g.value;
        EXPECT_NE(doc.find(needle), std::string::npos)
            << "golden counter not found: " << needle;
    }
}
