/**
 * @file
 * Tests for links, the routed Infinity Fabric network, and the
 * remote-memory adapter.
 */

#include <gtest/gtest.h>

#include "fabric/link.hh"
#include "fabric/network.hh"
#include "fabric/remote_device.hh"

using namespace ehpsim;
using namespace ehpsim::fabric;

TEST(Link, SerializationPlusLatency)
{
    SimObject root(nullptr, "root");
    LinkParams p;
    p.bandwidth = gbps(1.0);    // 1 byte/ns
    p.latency = 5'000;          // 5 ns
    Link link(&root, "l", p);
    // 1000 bytes -> 1000 ns serialization + 5 ns latency.
    EXPECT_EQ(link.transfer(0, 1000), 1'005'000u);
}

TEST(Link, BackToBackTransfersQueue)
{
    SimObject root(nullptr, "root");
    LinkParams p;
    p.bandwidth = gbps(1.0);
    p.latency = 0;
    Link link(&root, "l", p);
    EXPECT_EQ(link.transfer(0, 1000), 1'000'000u);
    // Issued at the same time: must wait for the first.
    EXPECT_EQ(link.transfer(0, 1000), 2'000'000u);
}

TEST(Link, HighPriorityBypassesQueue)
{
    SimObject root(nullptr, "root");
    LinkParams p;
    p.bandwidth = gbps(1.0);
    p.latency = 1'000;
    Link link(&root, "l", p);
    link.transfer(0, 1'000'000);            // occupy for 1 ms
    const Tick hp = link.transfer(0, 32, true);
    EXPECT_LT(hp, 100'000u);                // did not wait
    EXPECT_DOUBLE_EQ(link.hp_transfers.value(), 1.0);
}

TEST(Link, HighPriorityBusyAccounting)
{
    SimObject root(nullptr, "root");
    LinkParams p;
    p.bandwidth = gbps(1.0);    // 1 byte/ns
    p.latency = 0;
    Link link(&root, "l", p);
    // 1000 bytes of reserved-VC traffic: 1000 ns of serialization
    // that bypasses the occupancy queue. A link carrying only HP
    // traffic used to report busy_frac == 0; the serialization now
    // lands in the separate hp_busy_frac so bulk busy_frac keeps
    // meaning occupancy-queue pressure.
    link.transfer(0, 1000, true);
    EXPECT_DOUBLE_EQ(link.utilization(), 0.0);
    EXPECT_DOUBLE_EQ(link.hpUtilization(), 1.0);
    EXPECT_DOUBLE_EQ(link.hp_busy_frac.value(), 1.0);
}

TEST(Link, MixedTrafficSplitsBusyAccounting)
{
    SimObject root(nullptr, "root");
    LinkParams p;
    p.bandwidth = gbps(1.0);
    p.latency = 0;
    Link link(&root, "l", p);
    link.transfer(0, 1000);             // bulk: occupancy queue
    link.transfer(0, 1000, true);       // HP: reserved VC
    // Both classes serialize for the full observed window, each
    // counted in its own bucket.
    EXPECT_DOUBLE_EQ(link.utilization(), 1.0);
    EXPECT_DOUBLE_EQ(link.hpUtilization(), 1.0);
}

TEST(Link, EnergyAccounting)
{
    SimObject root(nullptr, "root");
    LinkParams p = usrLinkParams();     // 3.2 pJ/B (0.4 mW/Gbps)
    Link link(&root, "usr", p);
    link.transfer(0, 1'000'000'000);    // 1 GB
    EXPECT_NEAR(link.energyJoules(), 3.2e-3, 1e-4);
}

TEST(Link, UsrVsSerdesEfficiency)
{
    // Paper Sec. V.A: USR beats SerDes by >10x bandwidth density and
    // runs at lower energy.
    const LinkParams usr = usrLinkParams();
    const LinkParams serdes = serdesIfLinkParams();
    EXPECT_GT(usr.bandwidth / serdes.bandwidth, 10.0);
    EXPECT_LT(usr.energy_pj_per_byte, serdes.energy_pj_per_byte);
}

namespace
{

/** A 2x2 IOD mesh with one XCD and one stack, like a mini MI300. */
struct MeshFixture
{
    SimObject root{nullptr, "root"};
    Network net{&root, "net"};
    NodeId iod[4];
    NodeId xcd;
    NodeId hbm;

    MeshFixture()
    {
        for (int i = 0; i < 4; ++i) {
            iod[i] = net.addNode("iod" + std::to_string(i),
                                 NodeKind::iod);
        }
        net.connect(iod[0], iod[1], usrLinkParams());
        net.connect(iod[1], iod[2], usrLinkParams());
        net.connect(iod[2], iod[3], usrLinkParams());
        net.connect(iod[3], iod[0], usrLinkParams());
        xcd = net.addNode("xcd0", NodeKind::xcd);
        hbm = net.addNode("hbm0", NodeKind::hbmStack);
        net.connect(xcd, iod[0], onDieLinkParams());
        net.connect(hbm, iod[2], interposerLinkParams());
    }
};

} // anonymous namespace

TEST(Network, ShortestPathRouting)
{
    MeshFixture f;
    EXPECT_EQ(f.net.hopCount(f.iod[0], f.iod[1]), 1u);
    EXPECT_EQ(f.net.hopCount(f.iod[0], f.iod[2]), 2u);
    // XCD on iod0 to HBM on iod2: 4 hops.
    EXPECT_EQ(f.net.hopCount(f.xcd, f.hbm), 4u);
    EXPECT_EQ(f.net.hopCount(f.xcd, f.xcd), 0u);
}

TEST(Network, SendAccumulatesLatency)
{
    MeshFixture f;
    const auto res = f.net.send(0, f.xcd, f.hbm, 64);
    EXPECT_EQ(res.hops, 4u);
    // At least the sum of the four link latencies.
    const Tick min_latency = 1'000 + 5'000 + 5'000 + 3'000;
    EXPECT_GE(res.arrival, min_latency);
    EXPECT_GT(res.energy_pj, 0.0);
}

TEST(Network, ContentionSerializesOnSharedLink)
{
    MeshFixture f;
    const auto a = f.net.send(0, f.iod[0], f.iod[1], 1 << 20);
    const auto b = f.net.send(0, f.iod[0], f.iod[1], 1 << 20);
    EXPECT_GT(b.arrival, a.arrival);
}

TEST(Network, DuplicateNodeNameFatal)
{
    SimObject root(nullptr, "root");
    Network net(&root, "net");
    net.addNode("a", NodeKind::iod);
    EXPECT_THROW(net.addNode("a", NodeKind::iod), std::runtime_error);
}

TEST(Network, UnreachableNodeFatal)
{
    SimObject root(nullptr, "root");
    Network net(&root, "net");
    const auto a = net.addNode("a", NodeKind::iod);
    const auto b = net.addNode("b", NodeKind::iod);
    EXPECT_THROW(net.path(a, b), std::runtime_error);
}

TEST(Network, RoutesRecomputedAfterTopologyChange)
{
    SimObject root(nullptr, "root");
    Network net(&root, "net");
    const auto a = net.addNode("a", NodeKind::iod);
    const auto b = net.addNode("b", NodeKind::iod);
    const auto c = net.addNode("c", NodeKind::iod);
    net.connect(a, b, usrLinkParams());
    net.connect(b, c, usrLinkParams());
    EXPECT_EQ(net.hopCount(a, c), 2u);
    net.connect(a, c, usrLinkParams());
    EXPECT_EQ(net.hopCount(a, c), 1u);
}

TEST(Network, NodeLookupByName)
{
    MeshFixture f;
    EXPECT_EQ(f.net.nodeByName("xcd0"), f.xcd);
    EXPECT_THROW(f.net.nodeByName("nope"), std::runtime_error);
    EXPECT_EQ(f.net.nodeName(f.hbm), "hbm0");
}

TEST(Network, NameLookupStaysExactAtScale)
{
    SimObject root(nullptr, "root");
    Network net(&root, "net");
    std::vector<NodeId> ids;
    for (int i = 0; i < 64; ++i) {
        ids.push_back(
            net.addNode("n" + std::to_string(i), NodeKind::iod));
    }
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(net.nodeByName("n" + std::to_string(i)), ids[i]);
    // The name map rejects duplicates even late in population.
    EXPECT_THROW(net.addNode("n63", NodeKind::iod),
                 std::runtime_error);
}

TEST(Network, KilledLinkReroutesTheLongWayRound)
{
    MeshFixture f;
    ASSERT_EQ(f.net.hopCount(f.iod[0], f.iod[1]), 1u);
    f.net.killLink(f.iod[0], f.iod[1]);
    // The 4-ring still connects them the other way.
    EXPECT_TRUE(f.net.reachable(f.iod[0], f.iod[1]));
    EXPECT_EQ(f.net.hopCount(f.iod[0], f.iod[1]), 3u);
    EXPECT_FALSE(f.net.linkAlive(f.iod[0], f.iod[1]));
}

TEST(Network, LinkRouteCacheInvalidatedByMidSimKill)
{
    MeshFixture f;
    // Resolve and use the 1-hop route, as a CommGroup would.
    const LinkRoute &before = f.net.linkRoute(f.iod[0], f.iod[1]);
    ASSERT_EQ(before.links.size(), 1u);
    f.net.sendOnRoute(0, before, 4096);
    const std::uint64_t epoch = f.net.routeEpoch();
    // Kill the link mid-sim: the epoch must move (telling every
    // cached LinkRoute holder to re-resolve) and the fresh route
    // must go the long way round over live links only.
    f.net.killLink(f.iod[0], f.iod[1]);
    EXPECT_GT(f.net.routeEpoch(), epoch);
    const LinkRoute &after = f.net.linkRoute(f.iod[0], f.iod[1]);
    ASSERT_EQ(after.links.size(), 3u);
    for (const Link *l : after.links)
        EXPECT_TRUE(l->alive());
    const auto res = f.net.sendOnRoute(0, after, 4096);
    EXPECT_EQ(res.hops, 3u);
}

TEST(Network, RouteEpochTracksEveryTopologyMutation)
{
    SimObject root(nullptr, "root");
    Network net(&root, "net");
    std::uint64_t e = net.routeEpoch();
    const auto a = net.addNode("a", NodeKind::iod);
    EXPECT_GT(net.routeEpoch(), e);
    e = net.routeEpoch();
    const auto b = net.addNode("b", NodeKind::iod);
    EXPECT_GT(net.routeEpoch(), e);
    e = net.routeEpoch();
    net.connect(a, b, usrLinkParams());
    EXPECT_GT(net.routeEpoch(), e);
    e = net.routeEpoch();
    // Derating never moves routes (min-hop paths ignore bandwidth),
    // so cached LinkRoutes stay valid and the epoch must hold still.
    net.derateLink(a, b, 0.5);
    EXPECT_EQ(net.routeEpoch(), e);
    net.killLink(a, b);
    EXPECT_GT(net.routeEpoch(), e);
}

TEST(Network, SendMatchesSendOnRoute)
{
    // send() is linkRoute() + sendOnRoute(); a fresh identical mesh
    // must produce identical timing either way.
    MeshFixture f1, f2;
    const auto direct = f1.net.send(0, f1.xcd, f1.hbm, 1 << 20);
    const auto routed = f2.net.sendOnRoute(
        0, f2.net.linkRoute(f2.xcd, f2.hbm), 1 << 20);
    EXPECT_EQ(direct.arrival, routed.arrival);
    EXPECT_EQ(direct.hops, routed.hops);
    EXPECT_DOUBLE_EQ(direct.energy_pj, routed.energy_pj);
}

TEST(Network, PartitionedGraphFatalsOnUseNotOnKill)
{
    MeshFixture f;
    // Cutting both of iod0's ring links strands it (and its XCD)
    // from the HBM stack on iod2.
    f.net.killLink(f.iod[0], f.iod[1]);
    f.net.killLink(f.iod[3], f.iod[0]);
    EXPECT_FALSE(f.net.reachable(f.xcd, f.hbm));
    EXPECT_TRUE(f.net.reachable(f.xcd, f.iod[0]));
    try {
        f.net.send(0, f.xcd, f.hbm, 4096);
        FAIL() << "send across the partition must fatal";
    } catch (const std::runtime_error &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("'hbm0'"), std::string::npos) << msg;
        EXPECT_NE(msg.find("'xcd0'"), std::string::npos) << msg;
        EXPECT_NE(msg.find("partitioned"), std::string::npos) << msg;
    }
}

TEST(Network, EnergyRollsUpAcrossLinks)
{
    MeshFixture f;
    f.net.send(0, f.xcd, f.hbm, 1'000'000);
    EXPECT_GT(f.net.totalEnergyJoules(), 0.0);
}

namespace
{

class FixedLatencyMemory : public mem::MemDevice
{
  public:
    FixedLatencyMemory(SimObject *parent, Tick lat)
        : mem::MemDevice(parent, "mem"), lat_(lat)
    {}

    mem::AccessResult
    access(Tick when, Addr, std::uint64_t, bool) override
    {
        ++count;
        return {when + lat_, true, 0};
    }

    unsigned count = 0;

  private:
    Tick lat_;
};

} // anonymous namespace

TEST(RemoteMemDevice, RoundTripAddsFabricTime)
{
    MeshFixture f;
    FixedLatencyMemory target(&f.root, 100'000);
    RemoteMemDevice remote(&f.root, "remote", &f.net, f.xcd, f.hbm,
                           &target);
    const auto local = target.access(0, 0, 128, false);
    const auto via = remote.access(0, 0, 128, false);
    EXPECT_EQ(target.count, 2u);
    EXPECT_GT(via.complete, local.complete);
    // Round trip: request + response over 4 hops each way.
    EXPECT_GE(via.complete - local.complete, 2u * 14'000u);
}

TEST(RemoteMemDevice, WritesCarryPayloadOutbound)
{
    MeshFixture f;
    FixedLatencyMemory target(&f.root, 0);
    RemoteMemDevice remote(&f.root, "remote", &f.net, f.xcd, f.hbm,
                           &target);
    remote.access(0, 0, 1 << 20, true);
    // The outbound xcd->iod0 link must have carried ~1 MB.
    Link *out = f.net.link(f.xcd, f.iod[0]);
    EXPECT_GT(out->bytes_moved.value(), 1e6);
    Link *back = f.net.link(f.iod[0], f.xcd);
    EXPECT_LT(back->bytes_moved.value(), 1e3);  // just the ack
}
