/**
 * @file
 * Property tests for the windowed-bandwidth OccupancyTracker — the
 * contention model under every link, cache port, and DRAM bus.
 */

#include <gtest/gtest.h>

#include <vector>

#include "mem/mem_device.hh"
#include "sim/rng.hh"
#include "sim/units.hh"

using namespace ehpsim;
using namespace ehpsim::mem;

TEST(Occupancy, ZeroBandwidthPassesThrough)
{
    OccupancyTracker t(0.0);
    EXPECT_EQ(t.occupy(1234, 4096), 1234u);
}

TEST(Occupancy, ZeroBytesPassesThrough)
{
    OccupancyTracker t(1.0);
    EXPECT_EQ(t.occupy(1234, 0), 1234u);
}

TEST(Occupancy, UncontendedTransferTakesSerializationTime)
{
    OccupancyTracker t(1.0);    // 1 byte per tick
    const Tick done = t.occupy(1000, 500);
    EXPECT_EQ(done, 1500u);
}

TEST(Occupancy, BackToBackTransfersSerialize)
{
    OccupancyTracker t(1.0);
    Tick last = 0;
    for (int i = 0; i < 10; ++i)
        last = t.occupy(0, 1000);
    // 10 KB at 1 B/tick from t=0: ~10000 ticks (window quantized).
    EXPECT_GE(last, 9000u);
    EXPECT_LE(last, 11500u);
}

TEST(Occupancy, CompletionNeverBeforeArrivalPlusSerialization)
{
    OccupancyTracker t(2.0);
    Rng rng(7);
    for (int i = 0; i < 2000; ++i) {
        const Tick when = rng.nextBounded(1'000'000);
        const std::uint64_t bytes = 1 + rng.nextBounded(4096);
        const Tick done = t.occupy(when, bytes);
        EXPECT_GE(done + 1, when + bytes / 2);  // +1: rounding slack
    }
}

TEST(Occupancy, ThroughputBoundedByBandwidth)
{
    // Saturate from t=0 and verify total time >= bytes / bandwidth.
    OccupancyTracker t(4.0);
    const std::uint64_t total = 1 << 20;
    Tick last = 0;
    for (std::uint64_t sent = 0; sent < total; sent += 256)
        last = std::max(last, t.occupy(0, 256));
    EXPECT_GE(last, total / 4);
    // ...and not pathologically more (allow 25% quantization).
    EXPECT_LE(last, total / 4 + total / 16 + 100'000);
}

TEST(Occupancy, BackfillAllowsEarlyTrafficAfterFutureReservation)
{
    // This is the property the strict next-free FIFO lacked: a
    // transfer reserved far in the future must not delay traffic
    // arriving now.
    OccupancyTracker t(1.0);
    const Tick future = t.occupy(1'000'000, 4096);
    EXPECT_GE(future, 1'000'000u);
    const Tick now_done = t.occupy(0, 512);
    EXPECT_LT(now_done, 10'000u);
}

TEST(Occupancy, ContendedWindowPushesToNextFreeWindow)
{
    OccupancyTracker t(1.0);    // window = 1024 ticks, 1024 B budget
    // Fill the window at t=0 completely.
    t.occupy(0, 1024);
    // The next transfer at t=0 must land in a later window.
    const Tick done = t.occupy(0, 512);
    EXPECT_GT(done, 1024u);
}

TEST(Occupancy, ManySmallTransfersMatchOneLarge)
{
    OccupancyTracker a(8.0), b(8.0);
    Tick last_a = 0;
    for (int i = 0; i < 64; ++i)
        last_a = std::max(last_a, a.occupy(0, 1024));
    const Tick last_b = b.occupy(0, 64 * 1024);
    // Same bytes, same bandwidth: within one window of each other.
    EXPECT_NEAR(static_cast<double>(last_a),
                static_cast<double>(last_b), 1200.0);
}

TEST(Occupancy, ResetClearsHistory)
{
    OccupancyTracker t(1.0);
    t.occupy(0, 1 << 16);
    t.reset();
    EXPECT_EQ(t.nextFree(), 0u);
    const Tick done = t.occupy(0, 512);
    EXPECT_LT(done, 2000u);
}

class OccupancyRandom : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(OccupancyRandom, ConservationUnderRandomTraffic)
{
    // Total bytes pushed through any interval cannot exceed
    // bandwidth x interval: check via the maximum completion time.
    const double bw = 2.0;
    OccupancyTracker t(bw);
    Rng rng(GetParam());
    std::uint64_t total = 0;
    Tick max_done = 0;
    Tick min_when = maxTick;
    for (int i = 0; i < 5000; ++i) {
        const Tick when = rng.nextBounded(100'000);
        const std::uint64_t bytes = 64 + rng.nextBounded(2048);
        total += bytes;
        min_when = std::min(min_when, when);
        max_done = std::max(max_done, t.occupy(when, bytes));
    }
    const double span = static_cast<double>(max_done - min_when);
    EXPECT_GE(span * bw * 1.05 + 4096.0, static_cast<double>(total));
}

TEST_P(OccupancyRandom, MonotoneUnderSaturation)
{
    // When issued in nondecreasing 'when' order at saturation, the
    // completions of equal-size transfers are nondecreasing.
    OccupancyTracker t(1.0);
    Rng rng(GetParam());
    Tick when = 0;
    Tick prev_done = 0;
    for (int i = 0; i < 2000; ++i) {
        when += rng.nextBounded(3);
        const Tick done = t.occupy(when, 512);
        EXPECT_GE(done, prev_done);
        prev_done = done;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OccupancyRandom,
                         ::testing::Values(1, 17, 99));
