/**
 * @file
 * Tests for the CDNA rate tables (paper Table 1), compute units, and
 * the XCD.
 */

#include <gtest/gtest.h>

#include "gpu/cdna.hh"
#include "gpu/compute_unit.hh"
#include "gpu/xcd.hh"

using namespace ehpsim;
using namespace ehpsim::gpu;

namespace
{

class FlatMemory : public mem::MemDevice
{
  public:
    FlatMemory(SimObject *parent, Tick latency)
        : mem::MemDevice(parent, "flat"), latency_(latency)
    {}

    mem::AccessResult
    access(Tick when, Addr, std::uint64_t, bool) override
    {
        return {when + latency_, true, 0};
    }

  private:
    Tick latency_;
};

/** One row of paper Table 1. */
struct RateRow
{
    Pipe pipe;
    DataType dt;
    std::uint64_t cdna2;
    std::uint64_t cdna3;
};

const RateRow table1[] = {
    {Pipe::vector, DataType::fp64, 128, 128},
    {Pipe::vector, DataType::fp32, 128, 256},
    {Pipe::matrix, DataType::fp64, 256, 256},
    {Pipe::matrix, DataType::fp32, 256, 256},
    {Pipe::matrix, DataType::tf32, 0, 1024},
    {Pipe::matrix, DataType::fp16, 1024, 2048},
    {Pipe::matrix, DataType::bf16, 1024, 2048},
    {Pipe::matrix, DataType::fp8, 0, 4096},
    {Pipe::matrix, DataType::int8, 1024, 4096},
};

} // anonymous namespace

class Table1Rates : public ::testing::TestWithParam<RateRow>
{
};

TEST_P(Table1Rates, MatchesPaperTable1)
{
    const RateRow &row = GetParam();
    EXPECT_EQ(opsPerClockPerCu(CdnaGen::cdna2, row.pipe, row.dt),
              row.cdna2);
    EXPECT_EQ(opsPerClockPerCu(CdnaGen::cdna3, row.pipe, row.dt),
              row.cdna3);
}

INSTANTIATE_TEST_SUITE_P(AllRows, Table1Rates,
                         ::testing::ValuesIn(table1));

TEST(CdnaRates, SparsityDoublesLowPrecisionMatrix)
{
    // Paper: 4:2 sparsity reaches 8192 ops/clk/CU for FP8 and INT8.
    EXPECT_EQ(opsPerClockPerCu(CdnaGen::cdna3, Pipe::matrix,
                               DataType::fp8, true),
              8192u);
    EXPECT_EQ(opsPerClockPerCu(CdnaGen::cdna3, Pipe::matrix,
                               DataType::int8, true),
              8192u);
    EXPECT_EQ(opsPerClockPerCu(CdnaGen::cdna3, Pipe::matrix,
                               DataType::fp16, true),
              4096u);
    // No sparsity uplift on CDNA2 or on FP64.
    EXPECT_EQ(opsPerClockPerCu(CdnaGen::cdna2, Pipe::matrix,
                               DataType::int8, true),
              1024u);
    EXPECT_EQ(opsPerClockPerCu(CdnaGen::cdna3, Pipe::matrix,
                               DataType::fp64, true),
              256u);
}

TEST(CdnaRates, DataTypeSizes)
{
    EXPECT_EQ(dataTypeBytes(DataType::fp64), 8u);
    EXPECT_EQ(dataTypeBytes(DataType::fp32), 4u);
    EXPECT_EQ(dataTypeBytes(DataType::tf32), 4u);
    EXPECT_EQ(dataTypeBytes(DataType::fp16), 2u);
    EXPECT_EQ(dataTypeBytes(DataType::bf16), 2u);
    EXPECT_EQ(dataTypeBytes(DataType::fp8), 1u);
    EXPECT_EQ(dataTypeBytes(DataType::int8), 1u);
}

TEST(ComputeUnit, ComputeBoundWorkgroupTiming)
{
    SimObject root(nullptr, "root");
    FlatMemory memory(&root, 100);
    ComputeUnit cu(&root, "cu", cdna3CuParams(), &memory, nullptr);

    WorkgroupWork work;
    work.flops = 256 * 1000;        // 1000 cycles of FP32 vector
    work.dtype = DataType::fp32;
    work.pipe = Pipe::vector;
    work.inst_bytes = 0;
    const Tick done = cu.runWorkgroup(0, work);
    // 1000 cycles at 1.7 GHz ~ 588 ns.
    EXPECT_NEAR(static_cast<double>(done), 1000.0 * 588.2, 3000.0);
}

TEST(ComputeUnit, PeakFlopsScaleWithRate)
{
    SimObject root(nullptr, "root");
    FlatMemory memory(&root, 100);
    ComputeUnit cu(&root, "cu", cdna3CuParams(), &memory, nullptr);
    const double fp32 = cu.peakFlops(Pipe::vector, DataType::fp32);
    const double fp64 = cu.peakFlops(Pipe::vector, DataType::fp64);
    EXPECT_DOUBLE_EQ(fp32 / fp64, 2.0);
    EXPECT_NEAR(cu.peakFlops(Pipe::matrix, DataType::fp8) / 1e12,
                4096 * 1.7e9 / 1e12, 0.01);
}

TEST(ComputeUnit, UnsupportedTypeFatal)
{
    SimObject root(nullptr, "root");
    FlatMemory memory(&root, 100);
    CuParams p = cdna2CuParams();
    ComputeUnit cu(&root, "cu", p, &memory, nullptr);
    WorkgroupWork work;
    work.flops = 100;
    work.dtype = DataType::fp8;     // CDNA2 has no FP8
    work.pipe = Pipe::matrix;
    EXPECT_THROW(cu.runWorkgroup(0, work), std::runtime_error);
}

TEST(ComputeUnit, MemoryBoundWorkgroup)
{
    SimObject root(nullptr, "root");
    FlatMemory slow(&root, 1'000'000);
    ComputeUnit cu(&root, "cu", cdna3CuParams(), &slow, nullptr);
    WorkgroupWork work;
    work.flops = 100;
    work.bytes_read = 64 * 1024;    // forces L1 misses
    work.inst_bytes = 0;
    const Tick done = cu.runWorkgroup(0, work);
    EXPECT_GT(done, 1'000'000u);
    EXPECT_GT(cu.memory_ticks.value(), cu.compute_ticks.value());
}

TEST(ComputeUnit, WorkgroupsSerializeOnOneCu)
{
    SimObject root(nullptr, "root");
    FlatMemory memory(&root, 100);
    ComputeUnit cu(&root, "cu", cdna3CuParams(), &memory, nullptr);
    WorkgroupWork work;
    work.flops = 256 * 1000;
    work.dtype = DataType::fp32;
    work.inst_bytes = 0;
    const Tick t1 = cu.runWorkgroup(0, work);
    const Tick t2 = cu.runWorkgroup(0, work);
    EXPECT_GT(t2, t1);
    EXPECT_DOUBLE_EQ(cu.workgroups.value(), 2.0);
}

TEST(Xcd, HarvestingEnables38Of40)
{
    SimObject root(nullptr, "root");
    FlatMemory memory(&root, 1000);
    XcdParams p = cdna3XcdParams();
    EXPECT_EQ(p.physical_cus, 40u);
    Xcd xcd(&root, "xcd", p, &memory);
    EXPECT_EQ(xcd.numActiveCus(), 38u);
}

TEST(Xcd, OverHarvestingFatal)
{
    SimObject root(nullptr, "root");
    FlatMemory memory(&root, 1000);
    XcdParams p = cdna3XcdParams();
    p.active_cus = 41;
    EXPECT_THROW(Xcd(&root, "xcd", p, &memory), std::runtime_error);
}

TEST(Xcd, PeakFlopsScaleWithActiveCus)
{
    SimObject root(nullptr, "root");
    FlatMemory memory(&root, 1000);
    Xcd xcd(&root, "xcd", cdna3XcdParams(), &memory);
    // 38 CUs x 256 FP32 x 1.7 GHz.
    EXPECT_NEAR(xcd.peakFlops(Pipe::vector, DataType::fp32) / 1e12,
                38.0 * 256 * 1.7e9 / 1e12, 0.01);
}

TEST(Xcd, DispatchSpreadsAcrossCus)
{
    SimObject root(nullptr, "root");
    FlatMemory memory(&root, 1000);
    Xcd xcd(&root, "xcd", cdna3XcdParams(), &memory);
    WorkgroupWork work;
    work.flops = 256 * 10000;
    work.dtype = DataType::fp32;
    work.inst_bytes = 0;

    // 38 equal workgroups: each CU should take exactly one, so the
    // drain time is about one workgroup's duration.
    Tick done = 0;
    for (int i = 0; i < 38; ++i)
        done = std::max(done, xcd.dispatchWorkgroup(0, work));
    Xcd xcd2(&root, "xcd2", cdna3XcdParams(), &memory);
    const Tick one = xcd2.dispatchWorkgroup(0, work);
    EXPECT_LT(static_cast<double>(done), 1.7 * one);
    EXPECT_DOUBLE_EQ(xcd.workgroups_dispatched.value(), 38.0);
}

TEST(Xcd, AceThroughputBoundsLaunchRate)
{
    SimObject root(nullptr, "root");
    FlatMemory memory(&root, 1000);
    XcdParams p = cdna3XcdParams();
    p.dispatch_cycles = 1000;       // deliberately slow ACEs
    Xcd xcd(&root, "xcd", p, &memory);
    WorkgroupWork tiny;
    tiny.flops = 256;
    tiny.dtype = DataType::fp32;
    tiny.inst_bytes = 0;
    Tick done = 0;
    for (int i = 0; i < 400; ++i)
        done = std::max(done, xcd.dispatchWorkgroup(0, tiny));
    // 400 launches / 4 ACEs x 1000 cycles ~ 100k cycles minimum.
    const Tick period = periodFromGHz(p.cu.clock_ghz);
    EXPECT_GT(done, 90'000 * period);
    EXPECT_GT(xcd.ace_stall_ticks.value(), 0.0);
}

TEST(Xcd, SharedICachePairs)
{
    SimObject root(nullptr, "root");
    FlatMemory memory(&root, 1000);
    Xcd xcd(&root, "xcd", cdna3XcdParams(), &memory);
    // 38 CUs -> 19 instruction caches; the l1 list has 38 entries.
    EXPECT_EQ(xcd.l1Caches().size(), 38u);
}

TEST(Xcd, Cdna2GcdProfile)
{
    SimObject root(nullptr, "root");
    FlatMemory memory(&root, 1000);
    Xcd gcd(&root, "gcd", cdna2GcdParams(), &memory);
    EXPECT_EQ(gcd.numActiveCus(), 110u);
    EXPECT_EQ(gcd.params().cu.gen, CdnaGen::cdna2);
}
