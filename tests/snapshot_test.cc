/**
 * @file
 * Tests for the checkpoint/fast-forward layer (DESIGN.md §16).
 *
 * The load-bearing invariant: checkpoint -> restore -> run produces
 * JSON byte-identical to the straight-through run — for the serving
 * scenario (which transitively exercises the fabric, CommGroup, HBM,
 * and fault injector), serially and under PDES. Corrupt, truncated,
 * and mismatched blobs must fail loudly (fatal(), which throws), and
 * pooled keyed events must survive a save/restore/destroy cycle
 * without leaking (the ASan job runs this file).
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>

#include <atomic>

#include "comm/comm_group.hh"
#include "serve/scenario.hh"
#include "sim/event_queue.hh"
#include "sim/sim_object.hh"
#include "sim/snapshot.hh"
#include "soc/node_topology.hh"
#include "sweep/sweep_runner.hh"

using namespace ehpsim;

namespace
{

/**
 * A TP-4 serving scenario over the octo node with every fault class
 * active: timed link derate, timed channel blackout, and transient
 * chunk errors. Small enough to run in milliseconds, rich enough
 * that a checkpoint divergence anywhere in the stack shows up in
 * the byte compare.
 */
serve::ScenarioParams
faultedTp4Params()
{
    serve::ScenarioParams p;
    p.tp = 4;
    p.num_requests = 10;
    p.load_rps = 8.0;
    p.input_tokens = 512;
    p.output_tokens = 64;
    p.seed = 7;

    p.faults.seed = 11;
    p.faults.chunk_error_rate = 0.01;
    fault::LinkFault lf;
    lf.node_a = "mi300x0";
    lf.node_b = "mi300x1";
    lf.derate = 0.5;
    p.faults.link_faults.push_back(lf);
    fault::ChannelFault cf;
    cf.channel = 3;
    p.faults.channel_faults.push_back(cf);
    return p;
}

/** The full dumpScenario() document (params + metrics + stats). */
std::string
scenarioJson(const serve::ScenarioParams &p,
             const serve::ScenarioResult &r)
{
    std::ostringstream os;
    json::JsonWriter jw(os);
    serve::dumpScenario(jw, p, r);
    return os.str();
}

/**
 * Place the faults and the checkpoint inside the run: faults at
 * ~30% of the straight-through makespan, checkpoint at ~60%, so the
 * restored half resumes after one fault already landed and with the
 * rest of the request stream still in flight.
 */
void
placeInRun(serve::ScenarioParams &p, double makespan_s)
{
    const Tick fault_at = ticksFromSeconds(0.3 * makespan_s);
    p.faults.link_faults[0].at = fault_at;
    p.faults.channel_faults[0].at = fault_at;
    p.checkpoint_at = ticksFromSeconds(0.6 * makespan_s);
}

} // anonymous namespace

// ---------------------------------------------------------------------
// Byte identity: checkpoint -> restore -> run vs straight-through
// ---------------------------------------------------------------------

TEST(ServeCheckpoint, ByteIdenticalSerial)
{
    serve::ScenarioParams p = faultedTp4Params();
    const auto probe = serve::runServingScenario(p);
    placeInRun(p, probe.makespan_s);

    serve::ScenarioParams straight = p;
    straight.checkpoint_at = 0;
    const auto base = serve::runServingScenario(straight);
    const auto forked = serve::runServingScenario(p);

    // The faults must actually have fired (otherwise this test
    // proves nothing about replaying pending keyed fault events).
    EXPECT_GT(base.channels_dark, 0u);
    EXPECT_EQ(scenarioJson(straight, base), scenarioJson(straight, forked));
}

TEST(ServeCheckpoint, ByteIdenticalPdes)
{
    serve::ScenarioParams p = faultedTp4Params();
    const auto probe = serve::runServingScenario(p);
    placeInRun(p, probe.makespan_s);

    serve::ScenarioParams straight = p;
    straight.checkpoint_at = 0;
    const auto base = serve::runServingScenario(straight);

    p.pdes = 8;
    const auto forked = serve::runServingScenario(p);
    EXPECT_EQ(scenarioJson(straight, base), scenarioJson(straight, forked));
}

TEST(ServeCheckpoint, SplitSaveResumeMatchesStraight)
{
    // The CLI --checkpoint path: save and resume as two separate
    // calls (in a real invocation, two separate processes bridged
    // by writeSnapshotFile/readSnapshotFile).
    serve::ScenarioParams p = faultedTp4Params();
    const auto probe = serve::runServingScenario(p);
    placeInRun(p, probe.makespan_s);

    const std::string blob = serve::checkpointServingScenario(p);
    const auto resumed = serve::resumeServingScenario(p, blob);

    serve::ScenarioParams straight = p;
    straight.checkpoint_at = 0;
    const auto base = serve::runServingScenario(straight);
    EXPECT_EQ(scenarioJson(straight, base),
              scenarioJson(straight, resumed));
}

TEST(ServeCheckpoint, CheckpointAfterLastEventStillResumes)
{
    // A checkpoint tick beyond the makespan quiesces to an empty
    // queue; the resume must see a finished world, not a stall.
    serve::ScenarioParams p = faultedTp4Params();
    const auto probe = serve::runServingScenario(p);

    serve::ScenarioParams straight = p;
    const auto base = serve::runServingScenario(straight);

    p.checkpoint_at = ticksFromSeconds(2.0 * probe.makespan_s);
    const auto forked = serve::runServingScenario(p);
    EXPECT_EQ(scenarioJson(straight, base), scenarioJson(straight, forked));
}

// ---------------------------------------------------------------------
// Hand-rolled comm world: warmup, fork, run more collectives
// ---------------------------------------------------------------------

namespace
{

/** One octo-node comm world, built identically every time. */
struct CommWorld
{
    EventQueue eq;
    SimObject root;
    std::unique_ptr<soc::NodeTopology> topo;
    std::unique_ptr<comm::CommGroup> group;

    CommWorld()
        : root(nullptr, "root", &eq)
    {
        topo = soc::NodeTopology::mi300xOctoNode(&root);
        comm::CommParams cp;
        cp.chunk_bytes = 4 * MiB;
        group = std::make_unique<comm::CommGroup>(
            topo.get(), "comm", topo->network(), topo->deviceRanks(),
            &eq, cp);
    }

    void
    allReduce(std::uint64_t bytes)
    {
        group->allReduce(0, bytes, comm::Algorithm::ring);
        group->waitAll();
    }

    std::string
    statsJson()
    {
        std::ostringstream os;
        json::JsonWriter jw(os);
        root.dumpJsonStats(jw);
        return os.str();
    }
};

} // anonymous namespace

TEST(CommCheckpoint, ForkedCollectivesMatchStraightThrough)
{
    // Straight-through reference: four all-reduces back to back.
    CommWorld straight;
    straight.allReduce(64 * MiB);
    straight.allReduce(32 * MiB);
    straight.allReduce(64 * MiB);
    straight.allReduce(16 * MiB);

    // Warmup world: first two, then checkpoint at the op boundary
    // (waitAll already quiesced the queue — comm events are unkeyed,
    // so none can be pending at a legal save point).
    CommWorld warm;
    warm.allReduce(64 * MiB);
    warm.allReduce(32 * MiB);
    ASSERT_TRUE(warm.eq.allPendingKeyed());
    const std::string blob = saveWorld(warm.eq, warm.root);

    // Forked world: restore, then the remaining two.
    CommWorld forked;
    restoreWorld(blob, forked.eq, forked.root);
    forked.allReduce(64 * MiB);
    forked.allReduce(16 * MiB);

    EXPECT_EQ(straight.statsJson(), forked.statsJson());
}

TEST(CommCheckpoint, SaveWithCollectiveInFlightIsFatal)
{
    CommWorld w;
    w.group->allReduce(0, 64 * MiB, comm::Algorithm::ring);
    // Chunk events are pending and unkeyed: both the queue-level
    // gate and the CommGroup's own op-boundary check must refuse.
    ASSERT_FALSE(w.eq.allPendingKeyed());
    EXPECT_THROW(saveWorld(w.eq, w.root), std::runtime_error);
    w.group->waitAll();
}

// ---------------------------------------------------------------------
// Error paths: corrupt, truncated, mismatched
// ---------------------------------------------------------------------

namespace
{

std::string
smallServeBlob(serve::ScenarioParams &p)
{
    p = faultedTp4Params();
    p.checkpoint_at = ticksFromSeconds(0.01);
    return serve::checkpointServingScenario(p);
}

} // anonymous namespace

TEST(SnapshotErrors, TruncatedBlobIsFatal)
{
    serve::ScenarioParams p;
    const std::string blob = smallServeBlob(p);
    const std::string truncated = blob.substr(0, blob.size() / 2);
    EXPECT_THROW(serve::resumeServingScenario(p, truncated),
                 std::runtime_error);
}

TEST(SnapshotErrors, CorruptMagicIsFatal)
{
    serve::ScenarioParams p;
    std::string blob = smallServeBlob(p);
    blob[0] ^= 0x5a;
    EXPECT_THROW(serve::resumeServingScenario(p, blob),
                 std::runtime_error);
}

TEST(SnapshotErrors, FlippedPayloadByteIsFatal)
{
    serve::ScenarioParams p;
    std::string blob = smallServeBlob(p);
    // Flip a byte in a type tag or section name somewhere past the
    // header; the tagged stream must notice before restoring junk.
    blob[blob.size() / 3] ^= 0xff;
    EXPECT_THROW(serve::resumeServingScenario(p, blob),
                 std::runtime_error);
}

TEST(SnapshotErrors, TrailingGarbageIsFatal)
{
    serve::ScenarioParams p;
    std::string blob = smallServeBlob(p);
    blob += "garbage";
    EXPECT_THROW(serve::resumeServingScenario(p, blob),
                 std::runtime_error);
}

TEST(SnapshotErrors, MismatchedWorldIsFatal)
{
    serve::ScenarioParams p;
    const std::string blob = smallServeBlob(p);
    // Resume into a world with a different trace: the per-request
    // record count no longer matches.
    serve::ScenarioParams other = p;
    other.num_requests = p.num_requests + 3;
    EXPECT_THROW(serve::resumeServingScenario(other, blob),
                 std::runtime_error);
}

TEST(SnapshotErrors, EmptyBlobIsFatal)
{
    serve::ScenarioParams p;
    (void)smallServeBlob(p);
    EXPECT_THROW(serve::resumeServingScenario(p, ""),
                 std::runtime_error);
}

// ---------------------------------------------------------------------
// Pooled keyed events: save/restore/destroy under ASan
// ---------------------------------------------------------------------

TEST(SnapshotQueue, PooledKeyedEventsRoundTrip)
{
    // Schedule a few hundred keyed one-shots (mixed ticks and
    // priorities), save while ALL of them are pending, and replay
    // into a fresh queue. The donor queue is destroyed with its
    // events still pending — its pool must reclaim every slot
    // (this is the leak half of the ASan pass).
    constexpr int numEvents = 300;
    std::uint64_t sum = 0;

    auto factoryFor = [](EventQueue &q, std::uint64_t &acc) {
        return [&q, &acc](Tick when, std::uint64_t a0,
                          std::uint64_t a1) {
            q.scheduleKeyed(when, "t.add", a0, a1,
                            [&acc, a0] { acc += a0; },
                            static_cast<int>(a1));
        };
    };

    SnapshotWriter w;
    {
        EventQueue donor;
        std::uint64_t donor_sum = 0;
        donor.registerKeyedFactory("t.add",
                                   factoryFor(donor, donor_sum));
        for (int i = 1; i <= numEvents; ++i) {
            donor.scheduleKeyed(
                static_cast<Tick>(100 * (i % 17)), "t.add",
                static_cast<std::uint64_t>(i), i % 3,
                [&donor_sum, i] {
                    donor_sum += static_cast<std::uint64_t>(i);
                },
                i % 3);
        }
        ASSERT_TRUE(donor.allPendingKeyed());
        donor.save(w);
        // donor dies here with all 300 events pending.
    }

    EventQueue fresh;
    fresh.registerKeyedFactory("t.add", factoryFor(fresh, sum));
    SnapshotReader r(w.blob());
    fresh.restore(r);
    EXPECT_EQ(fresh.size(), static_cast<std::size_t>(numEvents));
    fresh.run();
    EXPECT_EQ(sum,
              static_cast<std::uint64_t>(numEvents)
                  * (numEvents + 1) / 2);
}

TEST(SnapshotQueue, RestoreWithoutFactoryIsFatal)
{
    SnapshotWriter w;
    {
        EventQueue donor;
        donor.registerKeyedFactory(
            "t.orphan", [](Tick, std::uint64_t, std::uint64_t) {});
        donor.scheduleKeyed(5, "t.orphan", 0, 0, [] {});
        donor.save(w);
    }
    EventQueue fresh; // no factory registered
    SnapshotReader r(w.blob());
    EXPECT_THROW(fresh.restore(r), std::runtime_error);
}

TEST(SnapshotQueue, SaveWithUnkeyedPendingIsFatal)
{
    EventQueue q;
    q.scheduleCallback(10, [] {});
    SnapshotWriter w;
    EXPECT_THROW(q.save(w), std::runtime_error);
    q.run();
}

// ---------------------------------------------------------------------
// SweepRunner::addForkedJob: shared-warmup dedup and fan-out
// ---------------------------------------------------------------------

TEST(SweepFork, SharedWarmupProducedOnce)
{
    // 8 points over one prefix plus 2 over another: exactly two
    // produce() calls, every job sees its own prefix's blob, and
    // the output stays deterministic across pool sizes.
    for (const unsigned workers : {1u, 4u}) {
        std::atomic<int> produced_a{0};
        std::atomic<int> produced_b{0};
        sweep::SweepRunner runner(workers);

        sweep::WarmupSpec a;
        a.config = "prefix-a";
        a.produce = [&produced_a] {
            ++produced_a;
            return std::string("blob-a");
        };
        sweep::WarmupSpec b;
        b.config = "prefix-b";
        b.produce = [&produced_b] {
            ++produced_b;
            return std::string("blob-b");
        };

        for (int i = 0; i < 8; ++i) {
            runner.addForkedJob(
                "a" + std::to_string(i), a,
                [](const std::string &blob, json::JsonWriter &jw) {
                    jw.value(blob);
                });
        }
        for (int i = 0; i < 2; ++i) {
            runner.addForkedJob(
                "b" + std::to_string(i), b,
                [](const std::string &blob, json::JsonWriter &jw) {
                    jw.value(blob);
                });
        }
        EXPECT_EQ(runner.numWarmups(), 2u);

        const auto results = runner.run();
        EXPECT_EQ(produced_a.load(), 1);
        EXPECT_EQ(produced_b.load(), 1);
        ASSERT_EQ(results.size(), 10u);
        for (std::size_t i = 0; i < results.size(); ++i) {
            ASSERT_TRUE(results[i].ok) << results[i].error;
            EXPECT_EQ(results[i].output,
                      i < 8 ? "\"blob-a\"" : "\"blob-b\"");
        }
    }
}

TEST(SweepFork, WarmupFailureReachesEveryForkedJob)
{
    sweep::SweepRunner runner(2);
    sweep::WarmupSpec bad;
    bad.config = "explodes";
    std::atomic<int> produced{0};
    bad.produce = [&produced]() -> std::string {
        ++produced;
        throw std::runtime_error("warmup went sideways");
    };
    for (int i = 0; i < 4; ++i) {
        runner.addForkedJob(
            "p" + std::to_string(i), bad,
            [](const std::string &, json::JsonWriter &jw) {
                jw.value("unreachable");
            });
    }
    const auto results = runner.run();
    EXPECT_EQ(produced.load(), 1);
    for (const auto &res : results) {
        EXPECT_FALSE(res.ok);
        EXPECT_EQ(res.error, "warmup went sideways");
    }
}
