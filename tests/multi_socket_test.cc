/**
 * @file
 * Tests for multi-socket flat-address nodes (Fig. 18a semantics),
 * the multi-queue hardware scheduler, and energy reporting.
 */

#include <gtest/gtest.h>

#include "core/apu_system.hh"
#include "soc/multi_socket.hh"
#include "soc/node_topology.hh"
#include "workloads/generators.hh"

using namespace ehpsim;
using namespace ehpsim::soc;

namespace
{

std::unique_ptr<MultiSocketNode>
makeQuad(SimObject *root)
{
    // Four MI300A sockets, two x16 IF links per pair (Fig. 18a).
    return std::make_unique<MultiSocketNode>(
        root, "quad", mi300aConfig(), 4, 2);
}

} // anonymous namespace

TEST(MultiSocket, FlatAddressSpaceSpansSockets)
{
    SimObject root(nullptr, "root");
    auto node = makeQuad(&root);
    EXPECT_EQ(node->numSockets(), 4u);
    EXPECT_EQ(node->totalCapacity(), 4 * (128ull << 30));
    EXPECT_EQ(node->socketOf(0), 0u);
    EXPECT_EQ(node->socketOf(128ull << 30), 1u);
    EXPECT_EQ(node->socketOf((4ull << 37) - 1), 3u);
    EXPECT_THROW(node->socketOf(4 * (128ull << 30)),
                 std::runtime_error);
}

TEST(MultiSocket, LocalAccessAvoidsIfLinks)
{
    SimObject root(nullptr, "root");
    auto node = makeQuad(&root);
    node->accessFlat(0, 0, 0, 0x10000, 256, false);
    EXPECT_DOUBLE_EQ(node->local_accesses.value(), 1.0);
    EXPECT_DOUBLE_EQ(node->remote_accesses.value(), 0.0);
}

TEST(MultiSocket, RemoteAccessPaysTheLink)
{
    SimObject root(nullptr, "root");
    auto node = makeQuad(&root);
    const auto local =
        node->accessFlat(0, 0, 0, 0x10000, 256, false);
    const Addr remote_addr = (128ull << 30) + 0x10000;
    const auto remote =
        node->accessFlat(0, 0, 0, remote_addr, 256, false);
    EXPECT_GT(remote.complete, local.complete);
    EXPECT_DOUBLE_EQ(node->remote_accesses.value(), 1.0);
    // The IF link latency alone separates the two.
    EXPECT_GT(remote.complete - local.complete, 50'000u);
}

TEST(MultiSocket, RemoteBandwidthBoundedByIfLinks)
{
    SimObject root(nullptr, "root");
    auto node = makeQuad(&root);
    // Stream 8 MB from socket 0 to socket 1's memory.
    const Addr base = 128ull << 30;
    Tick worst = 0;
    for (Addr a = 0; a < (8u << 20); a += 256) {
        const auto r =
            node->accessFlat(0, 0, 0, base + a, 256, false);
        worst = std::max(worst, r.complete);
    }
    const double bw =
        (8.0 * (1 << 20)) / secondsFromTicks(worst);
    // Two x16 links per pair: 128 GB/s per direction ceiling.
    EXPECT_LT(bw, 130e9);
    EXPECT_GT(bw, 40e9);
}

TEST(MultiSocket, WriteCarriesPayloadOutbound)
{
    SimObject root(nullptr, "root");
    auto node = makeQuad(&root);
    const Addr remote_addr = (128ull << 30) + 0x4000;
    node->accessFlat(0, 0, 0, remote_addr, 4096, true);
    EXPECT_DOUBLE_EQ(node->remote_bytes.value(), 4096.0);
}

TEST(MultiSocket, CrossSocketHandoffOrdersAfterRelease)
{
    SimObject root(nullptr, "root");
    auto node = makeQuad(&root);
    // Dirty some producer-side caches so the release has work.
    auto &prod = node->socket(0);
    prod.xcd(0)->l2()->access(0, 0x1000, 4096, true);
    const Tick ready = node->crossSocketHandoff(1000, 0, 1);
    EXPECT_GT(ready, 1000u);
    // The producer's L2 was flushed by the system-scope release.
    EXPECT_EQ(prod.xcd(0)->l2()->array().numValid(), 0u);
}

TEST(MultiSocket, NeedsAtLeastTwoSockets)
{
    SimObject root(nullptr, "root");
    EXPECT_THROW(MultiSocketNode(&root, "solo", mi300aConfig(), 1, 2),
                 std::runtime_error);
}

// ---------------------------------------------------------------------
// Node-topology point-to-point routing (Fig. 18)
// ---------------------------------------------------------------------

TEST(NodeRouting, QuadNodePairsAreOneHop)
{
    SimObject root(nullptr, "root");
    auto node = soc::NodeTopology::mi300aQuadNode(&root);
    for (unsigned a = 0; a < 4; ++a) {
        for (unsigned b = 0; b < 4; ++b) {
            if (a == b)
                continue;
            EXPECT_EQ(node->network()->hopCount(node->nodeId(a),
                                                node->nodeId(b)),
                      1u);
            // Two ganged x16 IF links: 128 GB/s, 30 ns.
            EXPECT_DOUBLE_EQ(node->p2pBandwidth(a, b), 128e9);
            EXPECT_EQ(node->p2pLatency(a, b), 30'000u);
        }
    }
}

TEST(NodeRouting, OctoNodeDeviceAndHostHops)
{
    SimObject root(nullptr, "root");
    auto node = soc::NodeTopology::mi300xOctoNode(&root);
    auto *net = node->network();

    // Accelerator pairs: one x16 IF link, one hop.
    EXPECT_EQ(net->hopCount(node->nodeId(0), node->nodeId(7)), 1u);
    EXPECT_DOUBLE_EQ(node->p2pBandwidth(0, 7), 64e9);
    EXPECT_EQ(node->p2pLatency(0, 7), 30'000u);

    // Host to its own accelerators: one PCIe hop.
    const unsigned host0 = 8, host1 = 9;
    EXPECT_EQ(net->hopCount(node->nodeId(host0), node->nodeId(0)),
              1u);
    EXPECT_DOUBLE_EQ(node->p2pBandwidth(host0, 0), 64e9);
    EXPECT_EQ(node->p2pLatency(host0, 0), 150'000u);

    // Host to the other half's accelerators: PCIe + IF, two hops.
    EXPECT_EQ(net->hopCount(node->nodeId(host0), node->nodeId(4)),
              2u);
    EXPECT_DOUBLE_EQ(node->p2pBandwidth(host0, 4), 64e9);
    EXPECT_EQ(node->p2pLatency(host0, 4), 180'000u);

    // Host to host: PCIe, IF, PCIe — three hops, PCIe latency twice.
    EXPECT_EQ(net->hopCount(node->nodeId(host0), node->nodeId(host1)),
              3u);
    EXPECT_DOUBLE_EQ(node->p2pBandwidth(host0, host1), 64e9);
    EXPECT_EQ(node->p2pLatency(host0, host1), 330'000u);
}

TEST(NodeRouting, MultiHopSendPaysEveryHop)
{
    SimObject root(nullptr, "root");
    auto node = soc::NodeTopology::mi300xOctoNode(&root);
    auto *net = node->network();
    // One MiB host0 -> host1 crosses three links; serialization is
    // charged per hop, so arrival exceeds one-hop time plus the
    // summed propagation latencies.
    const auto res = net->send(0, node->nodeId(8), node->nodeId(9),
                               1 * MiB);
    EXPECT_EQ(res.hops, 3u);
    const Tick one_hop_ser = serializationTicks(1 * MiB, 64e9);
    EXPECT_EQ(res.arrival, 3 * one_hop_ser + 330'000u);
}

TEST(NodeTopologyLimits, SocketLinkBudgetIsValidated)
{
    SimObject root(nullptr, "root");
    soc::NodeTopology topo(&root, "caps");
    EXPECT_THROW(topo.addSocket("none", 0), std::runtime_error);
    EXPECT_THROW(topo.addSocket("nine", 9), std::runtime_error);

    const unsigned a = topo.addSocket("a", 8);
    const unsigned b = topo.addSocket("b", 8);
    const unsigned c = topo.addSocket("c", 8);
    EXPECT_THROW(topo.connect(a, a, 1), std::runtime_error);
    EXPECT_THROW(topo.connect(a, b, 0), std::runtime_error);
    topo.connect(a, b, 6);
    EXPECT_EQ(topo.freeLinks(a), 2u);
    // Over-subscribing the remaining budget fails loudly...
    EXPECT_THROW(topo.connect(a, c, 3), std::runtime_error);
    // ...and leaves the accounting untouched.
    EXPECT_EQ(topo.freeLinks(a), 2u);
    EXPECT_EQ(topo.freeLinks(c), 8u);
    topo.connect(a, c, 2);
    EXPECT_EQ(topo.freeLinks(a), 0u);
}

// ---------------------------------------------------------------------
// Multi-queue scheduling
// ---------------------------------------------------------------------

TEST(MultiQueue, IndependentQueuesInterleave)
{
    core::ApuSystem sys(mi300aConfig());
    auto *part = sys.package().unifiedPartition();
    hsa::UserQueue q0(&sys.package(), "q0", 8);
    hsa::UserQueue q1(&sys.package(), "q1", 8);

    hsa::Signal s0a, s0b, s1a;
    hsa::AqlPacket pkt;
    pkt.grid_workgroups = 12;
    pkt.work.flops = 256 * 4000;
    pkt.work.dtype = gpu::DataType::fp32;
    pkt.work.pipe = gpu::Pipe::vector;
    pkt.completion = &s0a;
    q0.submit(pkt);
    pkt.completion = &s0b;
    q0.submit(pkt);
    pkt.completion = &s1a;
    q1.submit(pkt);

    const Tick done = part->processQueues(0, {&q0, &q1});
    EXPECT_TRUE(s0a.done());
    EXPECT_TRUE(s0b.done());
    EXPECT_TRUE(s1a.done());
    // Queue 0's second packet waited for its first (barrier)...
    EXPECT_GT(s0b.completed_at, s0a.completed_at);
    // ...but queue 1's packet did not wait for queue 0's chain.
    EXPECT_LT(s1a.completed_at, s0b.completed_at);
    EXPECT_EQ(done, std::max(s0b.completed_at, s1a.completed_at));
    EXPECT_TRUE(q0.empty());
    EXPECT_TRUE(q1.empty());
}

TEST(MultiQueue, EmptyQueueListReturnsWhen)
{
    core::ApuSystem sys(mi300aConfig());
    auto *part = sys.package().unifiedPartition();
    EXPECT_EQ(part->processQueues(777, {}), 777u);
}

// ---------------------------------------------------------------------
// Energy reporting
// ---------------------------------------------------------------------

TEST(Energy, EventRunReportsEnergy)
{
    core::ApuSystem sys(mi300aConfig());
    auto w = workloads::streamTriad(1 << 18);
    w.phases[0].grid_workgroups = 256;
    const auto rep = sys.run(w);
    EXPECT_GT(rep.fabric_energy_j, 0.0);
    EXPECT_GT(rep.hbm_energy_j, 0.0);
    EXPECT_GT(rep.compute_energy_j, 0.0);
    EXPECT_GT(rep.averagePowerWatts(), 0.0);
    // A memory-bound kernel's HBM energy dwarfs its math energy.
    EXPECT_GT(rep.hbm_energy_j, rep.compute_energy_j);
}

TEST(Energy, EnergyScalesWithWork)
{
    core::ApuSystem sys(mi300aConfig());
    auto small = workloads::streamTriad(1 << 17);
    small.phases[0].grid_workgroups = 128;
    auto large = workloads::streamTriad(1 << 19);
    large.phases[0].grid_workgroups = 512;
    const auto rs = sys.run(small);
    const auto rl = sys.run(large);
    EXPECT_GT(rl.totalEnergyJoules(),
              2.0 * rs.totalEnergyJoules());
}
