/**
 * @file
 * Unit tests for the discrete-event kernel, RNG, statistics, and
 * unit helpers.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/json.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"
#include "sim/units.hh"

using namespace ehpsim;

namespace
{

class RecordingEvent : public Event
{
  public:
    RecordingEvent(std::vector<int> *log, int id,
                   int priority = Event::defaultPriority)
        : Event(priority), log_(log), id_(id)
    {}

    void process() override { log_->push_back(id_); }

  private:
    std::vector<int> *log_;
    int id_;
};

/** Appends "id@tick " to a trace string when fired. */
class TraceEvent : public Event
{
  public:
    TraceEvent(std::string *out, int id,
               int priority = Event::defaultPriority)
        : Event(priority), out_(out), id_(id)
    {}

    void process() override
    {
        *out_ += std::to_string(id_) + "@" +
                 std::to_string(when()) + " ";
    }

  private:
    std::string *out_;
    int id_;
};

} // anonymous namespace

TEST(EventQueue, RunsEventsInTickOrder)
{
    EventQueue eq;
    std::vector<int> log;
    RecordingEvent a(&log, 1), b(&log, 2), c(&log, 3);
    eq.schedule(&b, 200);
    eq.schedule(&a, 100);
    eq.schedule(&c, 300);
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.curTick(), 300u);
    EXPECT_EQ(eq.numProcessed(), 3u);
}

TEST(EventQueue, SameTickOrderedByPriorityThenFifo)
{
    EventQueue eq;
    std::vector<int> log;
    RecordingEvent lo(&log, 1, Event::minimumPriority);
    RecordingEvent hi(&log, 2, Event::maximumPriority);
    RecordingEvent mid1(&log, 3);
    RecordingEvent mid2(&log, 4);
    eq.schedule(&lo, 50);
    eq.schedule(&mid1, 50);
    eq.schedule(&mid2, 50);
    eq.schedule(&hi, 50);
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{2, 3, 4, 1}));
}

TEST(EventQueue, RunHonorsLimit)
{
    EventQueue eq;
    std::vector<int> log;
    RecordingEvent a(&log, 1), b(&log, 2);
    eq.schedule(&a, 100);
    eq.schedule(&b, 500);
    const Tick stopped = eq.run(250);
    EXPECT_EQ(stopped, 250u);
    EXPECT_EQ(log, std::vector<int>{1});
    EXPECT_FALSE(eq.empty());
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2}));
}

TEST(EventQueue, DescheduleRemovesEvent)
{
    EventQueue eq;
    std::vector<int> log;
    RecordingEvent a(&log, 1), b(&log, 2);
    eq.schedule(&a, 100);
    eq.schedule(&b, 200);
    eq.deschedule(&a);
    EXPECT_FALSE(a.scheduled());
    eq.run();
    EXPECT_EQ(log, std::vector<int>{2});
}

TEST(EventQueue, RescheduleMovesEvent)
{
    EventQueue eq;
    std::vector<int> log;
    RecordingEvent a(&log, 1), b(&log, 2);
    eq.schedule(&a, 100);
    eq.schedule(&b, 200);
    eq.reschedule(&a, 300);
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{2, 1}));
}

TEST(EventQueue, DescheduleThenDeleteIsSafe)
{
    // Regression: skipDead() used to read ev->scheduled_ through the
    // stale queue entry — a use-after-free when the owner deletes an
    // event right after descheduling it. The queue must track dead
    // entries by sequence number and never touch the event again.
    EventQueue eq;
    std::vector<int> log;
    auto *doomed = new RecordingEvent(&log, 1);
    RecordingEvent survivor(&log, 2);
    eq.schedule(doomed, 100);
    eq.schedule(&survivor, 200);
    eq.deschedule(doomed);
    delete doomed;      // owner frees it while the stale entry queues
    eq.run();           // must drain without touching freed memory
    EXPECT_EQ(log, std::vector<int>{2});
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, DescheduleDeleteReuseSameTick)
{
    // Same shape, but the freed slot is immediately reused by a new
    // event at the same tick — maximally confusing for any code that
    // still dereferenced the stale pointer.
    EventQueue eq;
    std::vector<int> log;
    auto *doomed = new RecordingEvent(&log, 1);
    eq.schedule(doomed, 50);
    eq.deschedule(doomed);
    delete doomed;
    auto *fresh = new RecordingEvent(&log, 3);
    eq.schedule(fresh, 50);
    eq.run();
    EXPECT_EQ(log, std::vector<int>{3});
    delete fresh;
}

TEST(EventQueue, RescheduleSelfDeletingEvent)
{
    // reschedule() must work for self-deleting events: the event
    // still fires exactly once, at the new time, and is deleted by
    // the queue as usual.
    EventQueue eq;
    int count = 0;
    Tick fired_at = 0;
    auto *ev = new LambdaEvent([&] {
        ++count;
        fired_at = eq.curTick();
    });
    eq.schedule(ev, 100);
    eq.reschedule(ev, 400);
    eq.reschedule(ev, 250);
    eq.run();
    EXPECT_EQ(count, 1);
    EXPECT_EQ(fired_at, 250u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.numProcessed(), 1u);
}

TEST(EventQueue, DescheduleSelfDeletingPanicsWithLeakMessage)
{
    EventQueue eq;
    auto *ev = new LambdaEvent([] {});
    eq.schedule(ev, 100);
    EXPECT_DEATH(eq.deschedule(ev), "leak");
    // In the parent the event is still queued; letting it fire frees
    // it (the only way a self-deleting event may leave the queue).
    eq.run();
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, LambdaEventsSelfDelete)
{
    EventQueue eq;
    int count = 0;
    eq.scheduleLambda(10, [&] { ++count; });
    eq.scheduleLambda(20, [&] { ++count; });
    eq.run();
    EXPECT_EQ(count, 2);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, EventsCanScheduleMoreEvents)
{
    EventQueue eq;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 5)
            eq.scheduleLambda(eq.curTick() + 10, chain);
    };
    eq.scheduleLambda(0, chain);
    eq.run();
    EXPECT_EQ(depth, 5);
    EXPECT_EQ(eq.curTick(), 40u);
}

TEST(EventQueue, SchedulingInPastPanics)
{
    EventQueue eq;
    eq.scheduleLambda(100, [] {});
    eq.run();
    std::vector<int> log;
    RecordingEvent a(&log, 1);
    EXPECT_DEATH(eq.schedule(&a, 50), "past");
}

TEST(EventQueue, GoldenTraceMatchesPreRewriteKernel)
{
    // A mixed scheduling script (overlapping ticks, all priority
    // bands, reschedules, deschedules, same-tick cross-scheduling, a
    // partial run with late arrivals) whose firing order was captured
    // verbatim from the PR 4 tombstone-based kernel. The indexed-heap
    // kernel must reproduce it exactly: the (tick, priority, seq)
    // total order — including that reschedule() consumes a fresh
    // sequence number per call — is the byte-determinism contract
    // every sweep JSON depends on.
    EventQueue eq;
    std::string trace;
    const int prios[] = {Event::maximumPriority, 30,
                         Event::defaultPriority, 70,
                         Event::minimumPriority};
    std::vector<TraceEvent> evs;
    evs.reserve(40);
    for (int i = 0; i < 40; ++i)
        evs.emplace_back(&trace, i, prios[i % 5]);

    // Phase 1: schedule everyone on overlapping ticks.
    for (int i = 0; i < 40; ++i)
        eq.schedule(&evs[i], (i * 37) % 50);
    // Reschedule a third (consumes fresh seqs).
    for (int i = 0; i < 40; i += 3)
        eq.reschedule(&evs[i], (i * 17) % 60);
    // Deschedule a fifth.
    for (int i = 1; i < 40; i += 5)
        eq.deschedule(&evs[i]);

    // Same-tick cross-scheduling: a default-priority callback at
    // tick 10 schedules a *higher*-priority event at its own tick,
    // another deschedules a pending victim, a third reschedules one.
    TraceEvent inject(&trace, 100, Event::maximumPriority);
    eq.scheduleLambda(10, [&] { eq.schedule(&inject, 10); });
    eq.scheduleLambda(10, [&] {
        if (evs[22].scheduled())
            eq.deschedule(&evs[22]);
    });
    eq.scheduleLambda(10, [&] {
        if (evs[25].scheduled())
            eq.reschedule(&evs[25], 55);
    });

    // Self-deleting reschedule: fires once, at the final time.
    auto *moved = new LambdaEvent([&] { trace += "L@moved "; });
    eq.schedule(moved, 20);
    eq.reschedule(moved, 45);

    // Partial run, then more work lands mid-stream.
    eq.run(30);
    TraceEvent late(&trace, 200, 30);
    eq.schedule(&late, 31);
    for (int i = 1; i < 40; i += 5)
        eq.schedule(&evs[i], 58);   // revive the descheduled ones
    eq.run();

    trace += "| processed=" + std::to_string(eq.numProcessed()) +
             " final=" + std::to_string(eq.curTick());
    EXPECT_EQ(trace,
              "0@0 23@1 19@3 39@3 38@6 18@6 34@8 7@9 100@10 15@15 "
              "14@18 37@19 10@20 33@21 29@23 2@24 12@24 17@29 30@30 "
              "200@31 13@31 9@33 32@34 5@35 28@36 27@39 20@40 35@45 "
              "L@moved 8@46 4@48 24@48 3@51 25@55 1@58 6@58 11@58 "
              "16@58 21@58 26@58 31@58 36@58 | processed=45 final=58");
}

TEST(EventQueue, PooledCallableDestroyedAfterFiring)
{
    // The pool recycles the event's storage, but the captured state
    // must be released the moment the callback has fired — exactly
    // when deleting a LambdaEvent would have released it.
    EventQueue eq;
    auto token = std::make_shared<int>(1);
    eq.scheduleCallback(10, [token] {});
    EXPECT_EQ(token.use_count(), 2);
    eq.run();
    EXPECT_EQ(token.use_count(), 1);
}

TEST(EventQueue, DestructorReclaimsPendingOneShots)
{
    // One-shots that never fire are reclaimed — callable destructors
    // run — when the queue dies, for both pooled and heap-allocated
    // events (ASan would flag the leak otherwise).
    auto token = std::make_shared<int>(7);
    {
        EventQueue eq;
        eq.scheduleCallback(100, [token] {});
        eq.scheduleLambda(200, [token] {});
        EXPECT_EQ(token.use_count(), 3);
    }
    EXPECT_EQ(token.use_count(), 1);
}

TEST(EventQueue, PoolCapacityBoundedAcrossWaves)
{
    // Steady-state one-shot churn must recycle slots, not grow the
    // pool: 100 waves of 200 concurrent callbacks fit in a single
    // 256-slot slab forever.
    EventQueue eq;
    int fired = 0;
    for (int wave = 0; wave < 100; ++wave) {
        const Tick base = eq.curTick() + 1;
        for (int i = 0; i < 200; ++i)
            eq.scheduleCallback(base + i, [&fired] { ++fired; });
        eq.run();
    }
    EXPECT_EQ(fired, 20000);
    EXPECT_EQ(eq.poolCapacity(), 256u);
}

TEST(EventQueue, OversizedCallableFallsBackToHeap)
{
    // Captures larger than the pool's inline storage still work;
    // they take the heap-allocated LambdaEvent path and never touch
    // the pool.
    EventQueue eq;
    std::array<std::uint64_t, 9> payload{};
    static_assert(sizeof(payload) > inlineCallbackBytes);
    payload[8] = 42;
    std::uint64_t seen = 0;
    eq.scheduleCallback(10, [payload, &seen] { seen = payload[8]; });
    eq.run();
    EXPECT_EQ(seen, 42u);
    EXPECT_EQ(eq.poolCapacity(), 0u);
}

TEST(EventQueue, BatchMemberSchedulingHigherPrioritySameTick)
{
    // Batched dispatch pops the whole same-(tick, priority) run at
    // once. If a fired member schedules something that orders before
    // the rest of the batch, the unfired tail is spliced back so the
    // injected event runs in its correct slot.
    EventQueue eq;
    std::vector<int> log;
    eq.scheduleCallback(10, [&] {
        log.push_back(1);
        eq.scheduleCallback(10, [&] { log.push_back(99); },
                            Event::maximumPriority);
    });
    eq.scheduleCallback(10, [&] { log.push_back(2); });
    eq.scheduleCallback(10, [&] { log.push_back(3); });
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{1, 99, 2, 3}));
}

TEST(EventQueue, MidBatchDescheduleRemovesPoppedMember)
{
    // Descheduling an event that has already been popped into the
    // in-flight batch must still take effect (and the owner may free
    // the event immediately afterwards).
    EventQueue eq;
    std::vector<int> log;
    RecordingEvent victim(&log, 3);
    eq.scheduleCallback(10, [&] {
        log.push_back(1);
        eq.deschedule(&victim);
    });
    eq.schedule(&victim, 10);
    eq.scheduleCallback(10, [&] { log.push_back(2); });
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2}));
    EXPECT_FALSE(victim.scheduled());
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, MidBatchRescheduleMovesPoppedMember)
{
    EventQueue eq;
    std::vector<int> log;
    RecordingEvent victim(&log, 3);
    eq.scheduleCallback(10, [&] {
        log.push_back(1);
        eq.reschedule(&victim, 20);
    });
    eq.schedule(&victim, 10);
    eq.scheduleCallback(10, [&] { log.push_back(2); });
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.curTick(), 20u);
}

TEST(EventQueue, ThrowingBatchMemberRestoresTail)
{
    // A process() that throws mid-batch (fatal() on an error path)
    // must reclaim the throwing one-shot and put the unfired tail
    // back on the heap: nothing leaks, original order resumes.
    EventQueue eq;
    std::vector<int> log;
    eq.scheduleCallback(10, [&] { log.push_back(1); });
    eq.scheduleCallback(10, [] { fatal("mid-batch failure"); });
    eq.scheduleCallback(10, [&] { log.push_back(3); });
    eq.scheduleCallback(20, [&] { log.push_back(4); });
    EXPECT_THROW(eq.run(), std::runtime_error);
    EXPECT_EQ(eq.size(), 2u);
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{1, 3, 4}));
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, DescheduleHeavyChurnKeepsHeapBounded)
{
    // The tombstone queue left a dead entry per deschedule and leaned
    // on periodic compaction; the indexed heap removes entries in
    // place, so heavy schedule/deschedule churn cannot grow the heap
    // past the live high-water mark.
    EventQueue eq;
    std::vector<int> log;
    std::vector<RecordingEvent> evs;
    evs.reserve(64);
    for (int i = 0; i < 64; ++i)
        evs.emplace_back(&log, i);
    for (int round = 0; round < 1000; ++round) {
        const Tick base = eq.curTick() + 1;
        for (int i = 0; i < 64; ++i)
            eq.schedule(&evs[i], base + i % 7);
        for (int i = 0; i < 64; ++i)
            eq.deschedule(&evs[i]);
    }
    EXPECT_TRUE(eq.empty());
    EXPECT_TRUE(log.empty());
    EXPECT_EQ(eq.peakLive(), 64u);
    EXPECT_LE(eq.capacity(), 128u);
}

TEST(EventQueue, ReservePresizesHeap)
{
    EventQueue eq;
    eq.reserve(1000);
    EXPECT_GE(eq.capacity(), 1000u);
    const std::size_t cap = eq.capacity();
    int fired = 0;
    for (int i = 0; i < 1000; ++i)
        eq.scheduleCallback(1 + i, [&fired] { ++fired; });
    EXPECT_EQ(eq.capacity(), cap);  // burst fits: no regrowth
    eq.run();
    EXPECT_EQ(fired, 1000);
}

TEST(Rng, DeterministicFromSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 3);
}

TEST(Rng, BoundedStaysInBounds)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.nextBounded(17), 17u);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng r(9);
    for (int i = 0; i < 1000; ++i) {
        const double d = r.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, ForkIsIndependent)
{
    Rng a(3);
    Rng child = a.fork();
    EXPECT_NE(a.next(), child.next());
}

TEST(Stats, ScalarAccumulates)
{
    stats::StatGroup root(nullptr, "root");
    stats::Scalar s(&root, "count", "a counter");
    ++s;
    s += 4;
    EXPECT_DOUBLE_EQ(s.value(), 5.0);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(Stats, AverageTracksMinMaxMean)
{
    stats::StatGroup root(nullptr, "root");
    stats::Average a(&root, "lat", "latency");
    a.sample(10);
    a.sample(30);
    a.sample(20);
    EXPECT_DOUBLE_EQ(a.mean(), 20.0);
    EXPECT_DOUBLE_EQ(a.min(), 10.0);
    EXPECT_DOUBLE_EQ(a.max(), 30.0);
    EXPECT_EQ(a.count(), 3u);
}

TEST(Stats, DistributionBuckets)
{
    stats::StatGroup root(nullptr, "root");
    stats::Distribution d(&root, "dist", "sizes");
    d.init(0, 100, 10);
    d.sample(5);
    d.sample(15);
    d.sample(15);
    d.sample(-1);
    d.sample(100);
    EXPECT_EQ(d.bucketCount(0), 1u);
    EXPECT_EQ(d.bucketCount(1), 2u);
    EXPECT_EQ(d.underflows(), 1u);
    EXPECT_EQ(d.overflows(), 1u);
    EXPECT_EQ(d.count(), 5u);
}

TEST(Stats, FormulaEvaluatesLazily)
{
    stats::StatGroup root(nullptr, "root");
    stats::Scalar hits(&root, "hits", "");
    stats::Scalar misses(&root, "misses", "");
    stats::Formula rate(&root, "hit_rate", "", [&] {
        const double a = hits.value() + misses.value();
        return a > 0 ? hits.value() / a : 0.0;
    });
    hits += 3;
    misses += 1;
    EXPECT_DOUBLE_EQ(rate.value(), 0.75);
}

TEST(Stats, GroupPathsNestAndDump)
{
    stats::StatGroup root(nullptr, "system");
    stats::StatGroup child(&root, "cache");
    stats::Scalar s(&child, "hits", "demand hits");
    s += 2;
    EXPECT_EQ(child.statPath(), "system.cache");
    std::ostringstream oss;
    root.dumpStats(oss);
    EXPECT_NE(oss.str().find("system.cache.hits 2"), std::string::npos);
}

TEST(Stats, ResetRecurses)
{
    stats::StatGroup root(nullptr, "r");
    stats::StatGroup child(&root, "c");
    stats::Scalar s(&child, "v", "");
    s += 9;
    root.resetStats();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(Stats, FindStatByName)
{
    stats::StatGroup root(nullptr, "r");
    stats::Scalar s(&root, "v", "");
    EXPECT_EQ(root.findStat("v"), &s);
    EXPECT_EQ(root.findStat("w"), nullptr);
}

TEST(SimObject, InheritsEventQueueFromParent)
{
    EventQueue eq;
    SimObject parent(nullptr, "top", &eq);
    SimObject child(&parent, "child");
    EXPECT_EQ(child.eventq(), &eq);
    EXPECT_EQ(child.statPath(), "top.child");
}

TEST(Units, TickConversions)
{
    EXPECT_EQ(periodFromGHz(1.0), 1000u);
    EXPECT_EQ(periodFromGHz(2.0), 500u);
    EXPECT_EQ(ticksFromSeconds(1e-6), 1'000'000u);
    EXPECT_DOUBLE_EQ(secondsFromTicks(ticksPerSecond), 1.0);
}

TEST(Units, SerializationTicks)
{
    // 1 GB/s -> 1 byte per ns = 1000 ticks.
    EXPECT_EQ(serializationTicks(1, gbps(1.0)), 1000u);
    EXPECT_EQ(serializationTicks(0, gbps(1.0)), 0u);
    EXPECT_EQ(serializationTicks(100, 0.0), 0u);
}

TEST(Units, Formatting)
{
    EXPECT_EQ(formatBytes(128ull * GiB), "128 GiB");
    EXPECT_EQ(formatBytes(2 * MiB), "2 MiB");
    EXPECT_EQ(formatBytes(100), "100 B");
    EXPECT_EQ(formatBandwidth(tbps(5.3)), "5.30 TB/s");
    EXPECT_EQ(formatBandwidth(gbps(64.0)), "64.00 GB/s");
}

TEST(Logging, FatalThrows)
{
    EXPECT_THROW(fatal("bad config value ", 42), std::runtime_error);
}

TEST(Logging, WarnCounts)
{
    logging_detail::setQuiet(true);
    const auto before = logging_detail::warnCount();
    warn("something odd: ", 1);
    EXPECT_EQ(logging_detail::warnCount(), before + 1);
}

TEST(Stats, PercentileNearestRankIsExact)
{
    stats::StatGroup root(nullptr, "root");
    stats::Percentile p(&root, "lat", "latency samples");
    for (const double v : {40.0, 10.0, 100.0, 20.0, 60.0, 30.0, 90.0,
                           50.0, 80.0, 70.0})
        p.sample(v);

    EXPECT_EQ(p.count(), 10u);
    EXPECT_DOUBLE_EQ(p.mean(), 55.0);
    EXPECT_DOUBLE_EQ(p.percentile(0), 10.0);
    EXPECT_DOUBLE_EQ(p.percentile(50), 50.0);
    EXPECT_DOUBLE_EQ(p.percentile(95), 100.0);
    EXPECT_DOUBLE_EQ(p.percentile(99), 100.0);
    EXPECT_DOUBLE_EQ(p.percentile(100), 100.0);
}

TEST(Stats, PercentileIsInsertionOrderInvariant)
{
    stats::StatGroup root(nullptr, "root");
    stats::Percentile fwd(&root, "fwd", "");
    stats::Percentile rev(&root, "rev", "");
    for (int i = 1; i <= 101; ++i)
        fwd.sample(static_cast<double>(i));
    for (int i = 101; i >= 1; --i)
        rev.sample(static_cast<double>(i));
    for (const double q : {1.0, 25.0, 50.0, 75.0, 99.0})
        EXPECT_DOUBLE_EQ(fwd.percentile(q), rev.percentile(q));
}

TEST(Stats, PercentileEmptyIsZeroAndResets)
{
    stats::StatGroup root(nullptr, "root");
    stats::Percentile p(&root, "lat", "");
    EXPECT_EQ(p.count(), 0u);
    EXPECT_DOUBLE_EQ(p.percentile(50), 0.0);
    EXPECT_DOUBLE_EQ(p.mean(), 0.0);
    p.sample(3.0);
    p.reset();
    EXPECT_EQ(p.count(), 0u);
    EXPECT_DOUBLE_EQ(p.percentile(99), 0.0);
}

TEST(Stats, PercentileRangeCheckedEvenWhenEmpty)
{
    // Regression: the range check must precede the empty-samples
    // early return. The old order silently returned 0 for an
    // out-of-range p on an empty stat, hiding the caller bug until
    // the first sample arrived.
    stats::StatGroup root(nullptr, "root");
    stats::Percentile p(&root, "lat", "");
    ASSERT_EQ(p.count(), 0u);
    EXPECT_DEATH(p.percentile(-1.0), "out of range");
    EXPECT_DEATH(p.percentile(100.5), "out of range");
    p.sample(3.0);
    EXPECT_DEATH(p.percentile(101.0), "out of range");
}

TEST(Stats, PercentileDumpJsonCarriesSummary)
{
    stats::StatGroup root(nullptr, "root");
    stats::Percentile p(&root, "lat", "");
    p.sample(1.0);
    p.sample(2.0);
    std::ostringstream os;
    json::JsonWriter jw(os);
    root.dumpJsonStats(jw);
    const std::string doc = os.str();
    for (const char *key : {"\"p50\"", "\"p95\"", "\"p99\"",
                            "\"mean\"", "\"count\""})
        EXPECT_NE(doc.find(key), std::string::npos) << key;
}
