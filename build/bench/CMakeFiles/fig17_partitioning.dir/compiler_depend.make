# Empty compiler generated dependencies file for fig17_partitioning.
# This may be replaced when dependencies are built.
