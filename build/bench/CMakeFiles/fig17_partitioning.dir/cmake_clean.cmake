file(REMOVE_RECURSE
  "CMakeFiles/fig17_partitioning.dir/fig17_partitioning.cc.o"
  "CMakeFiles/fig17_partitioning.dir/fig17_partitioning.cc.o.d"
  "fig17_partitioning"
  "fig17_partitioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_partitioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
