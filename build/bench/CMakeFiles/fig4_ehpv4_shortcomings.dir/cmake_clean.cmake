file(REMOVE_RECURSE
  "CMakeFiles/fig4_ehpv4_shortcomings.dir/fig4_ehpv4_shortcomings.cc.o"
  "CMakeFiles/fig4_ehpv4_shortcomings.dir/fig4_ehpv4_shortcomings.cc.o.d"
  "fig4_ehpv4_shortcomings"
  "fig4_ehpv4_shortcomings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_ehpv4_shortcomings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
