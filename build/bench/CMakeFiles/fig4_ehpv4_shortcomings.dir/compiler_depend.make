# Empty compiler generated dependencies file for fig4_ehpv4_shortcomings.
# This may be replaced when dependencies are built.
