file(REMOVE_RECURSE
  "CMakeFiles/table1_cu_throughput.dir/table1_cu_throughput.cc.o"
  "CMakeFiles/table1_cu_throughput.dir/table1_cu_throughput.cc.o.d"
  "table1_cu_throughput"
  "table1_cu_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_cu_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
