# Empty dependencies file for fig19_generational_uplift.
# This may be replaced when dependencies are built.
