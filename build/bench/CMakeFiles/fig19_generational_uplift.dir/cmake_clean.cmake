file(REMOVE_RECURSE
  "CMakeFiles/fig19_generational_uplift.dir/fig19_generational_uplift.cc.o"
  "CMakeFiles/fig19_generational_uplift.dir/fig19_generational_uplift.cc.o.d"
  "fig19_generational_uplift"
  "fig19_generational_uplift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_generational_uplift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
