file(REMOVE_RECURSE
  "CMakeFiles/fig14_unified_memory.dir/fig14_unified_memory.cc.o"
  "CMakeFiles/fig14_unified_memory.dir/fig14_unified_memory.cc.o.d"
  "fig14_unified_memory"
  "fig14_unified_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_unified_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
