# Empty dependencies file for fig14_unified_memory.
# This may be replaced when dependencies are built.
