# Empty compiler generated dependencies file for fig15_fine_grained_overlap.
# This may be replaced when dependencies are built.
