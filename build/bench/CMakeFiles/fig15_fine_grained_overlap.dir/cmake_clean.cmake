file(REMOVE_RECURSE
  "CMakeFiles/fig15_fine_grained_overlap.dir/fig15_fine_grained_overlap.cc.o"
  "CMakeFiles/fig15_fine_grained_overlap.dir/fig15_fine_grained_overlap.cc.o.d"
  "fig15_fine_grained_overlap"
  "fig15_fine_grained_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_fine_grained_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
