# Empty compiler generated dependencies file for fig21_llm_inference.
# This may be replaced when dependencies are built.
