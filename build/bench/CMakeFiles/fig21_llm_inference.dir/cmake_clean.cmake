file(REMOVE_RECURSE
  "CMakeFiles/fig21_llm_inference.dir/fig21_llm_inference.cc.o"
  "CMakeFiles/fig21_llm_inference.dir/fig21_llm_inference.cc.o.d"
  "fig21_llm_inference"
  "fig21_llm_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig21_llm_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
