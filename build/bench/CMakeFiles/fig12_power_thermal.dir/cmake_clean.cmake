file(REMOVE_RECURSE
  "CMakeFiles/fig12_power_thermal.dir/fig12_power_thermal.cc.o"
  "CMakeFiles/fig12_power_thermal.dir/fig12_power_thermal.cc.o.d"
  "fig12_power_thermal"
  "fig12_power_thermal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_power_thermal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
