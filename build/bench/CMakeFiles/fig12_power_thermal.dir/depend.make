# Empty dependencies file for fig12_power_thermal.
# This may be replaced when dependencies are built.
