file(REMOVE_RECURSE
  "CMakeFiles/fig13_dispatch_scaling.dir/fig13_dispatch_scaling.cc.o"
  "CMakeFiles/fig13_dispatch_scaling.dir/fig13_dispatch_scaling.cc.o.d"
  "fig13_dispatch_scaling"
  "fig13_dispatch_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_dispatch_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
