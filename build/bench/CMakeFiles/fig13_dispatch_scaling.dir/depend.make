# Empty dependencies file for fig13_dispatch_scaling.
# This may be replaced when dependencies are built.
