# Empty compiler generated dependencies file for ablation_memory_system.
# This may be replaced when dependencies are built.
