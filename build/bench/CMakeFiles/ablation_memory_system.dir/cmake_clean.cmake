file(REMOVE_RECURSE
  "CMakeFiles/ablation_memory_system.dir/ablation_memory_system.cc.o"
  "CMakeFiles/ablation_memory_system.dir/ablation_memory_system.cc.o.d"
  "ablation_memory_system"
  "ablation_memory_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_memory_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
