# Empty compiler generated dependencies file for fig20_hpc_speedups.
# This may be replaced when dependencies are built.
