file(REMOVE_RECURSE
  "CMakeFiles/fig20_hpc_speedups.dir/fig20_hpc_speedups.cc.o"
  "CMakeFiles/fig20_hpc_speedups.dir/fig20_hpc_speedups.cc.o.d"
  "fig20_hpc_speedups"
  "fig20_hpc_speedups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_hpc_speedups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
