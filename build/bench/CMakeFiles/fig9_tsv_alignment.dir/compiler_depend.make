# Empty compiler generated dependencies file for fig9_tsv_alignment.
# This may be replaced when dependencies are built.
