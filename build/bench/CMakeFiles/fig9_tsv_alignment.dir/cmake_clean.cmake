file(REMOVE_RECURSE
  "CMakeFiles/fig9_tsv_alignment.dir/fig9_tsv_alignment.cc.o"
  "CMakeFiles/fig9_tsv_alignment.dir/fig9_tsv_alignment.cc.o.d"
  "fig9_tsv_alignment"
  "fig9_tsv_alignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_tsv_alignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
