# Empty dependencies file for fig7_iod_bandwidth.
# This may be replaced when dependencies are built.
