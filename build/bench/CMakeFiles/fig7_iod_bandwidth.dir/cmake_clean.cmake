file(REMOVE_RECURSE
  "CMakeFiles/fig7_iod_bandwidth.dir/fig7_iod_bandwidth.cc.o"
  "CMakeFiles/fig7_iod_bandwidth.dir/fig7_iod_bandwidth.cc.o.d"
  "fig7_iod_bandwidth"
  "fig7_iod_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_iod_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
