file(REMOVE_RECURSE
  "CMakeFiles/fig18_node_topologies.dir/fig18_node_topologies.cc.o"
  "CMakeFiles/fig18_node_topologies.dir/fig18_node_topologies.cc.o.d"
  "fig18_node_topologies"
  "fig18_node_topologies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_node_topologies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
