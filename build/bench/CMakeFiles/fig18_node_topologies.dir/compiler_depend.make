# Empty compiler generated dependencies file for fig18_node_topologies.
# This may be replaced when dependencies are built.
