file(REMOVE_RECURSE
  "CMakeFiles/bonding_test.dir/bonding_test.cc.o"
  "CMakeFiles/bonding_test.dir/bonding_test.cc.o.d"
  "bonding_test"
  "bonding_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bonding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
