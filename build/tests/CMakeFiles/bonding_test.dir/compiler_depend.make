# Empty compiler generated dependencies file for bonding_test.
# This may be replaced when dependencies are built.
