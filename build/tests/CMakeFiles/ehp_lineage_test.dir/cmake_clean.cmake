file(REMOVE_RECURSE
  "CMakeFiles/ehp_lineage_test.dir/ehp_lineage_test.cc.o"
  "CMakeFiles/ehp_lineage_test.dir/ehp_lineage_test.cc.o.d"
  "ehp_lineage_test"
  "ehp_lineage_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ehp_lineage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
