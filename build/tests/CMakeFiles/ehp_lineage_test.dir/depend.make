# Empty dependencies file for ehp_lineage_test.
# This may be replaced when dependencies are built.
