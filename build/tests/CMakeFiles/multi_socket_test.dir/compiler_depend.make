# Empty compiler generated dependencies file for multi_socket_test.
# This may be replaced when dependencies are built.
