file(REMOVE_RECURSE
  "CMakeFiles/multi_socket_test.dir/multi_socket_test.cc.o"
  "CMakeFiles/multi_socket_test.dir/multi_socket_test.cc.o.d"
  "multi_socket_test"
  "multi_socket_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_socket_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
