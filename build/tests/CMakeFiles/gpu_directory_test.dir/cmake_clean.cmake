file(REMOVE_RECURSE
  "CMakeFiles/gpu_directory_test.dir/gpu_directory_test.cc.o"
  "CMakeFiles/gpu_directory_test.dir/gpu_directory_test.cc.o.d"
  "gpu_directory_test"
  "gpu_directory_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu_directory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
