file(REMOVE_RECURSE
  "CMakeFiles/occupancy_test.dir/occupancy_test.cc.o"
  "CMakeFiles/occupancy_test.dir/occupancy_test.cc.o.d"
  "occupancy_test"
  "occupancy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/occupancy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
