file(REMOVE_RECURSE
  "CMakeFiles/hsa_test.dir/hsa_test.cc.o"
  "CMakeFiles/hsa_test.dir/hsa_test.cc.o.d"
  "hsa_test"
  "hsa_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
