# Empty compiler generated dependencies file for hsa_test.
# This may be replaced when dependencies are built.
