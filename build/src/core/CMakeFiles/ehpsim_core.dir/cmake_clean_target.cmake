file(REMOVE_RECURSE
  "libehpsim_core.a"
)
