file(REMOVE_RECURSE
  "CMakeFiles/ehpsim_core.dir/apu_system.cc.o"
  "CMakeFiles/ehpsim_core.dir/apu_system.cc.o.d"
  "CMakeFiles/ehpsim_core.dir/machine_model.cc.o"
  "CMakeFiles/ehpsim_core.dir/machine_model.cc.o.d"
  "CMakeFiles/ehpsim_core.dir/report.cc.o"
  "CMakeFiles/ehpsim_core.dir/report.cc.o.d"
  "CMakeFiles/ehpsim_core.dir/roofline.cc.o"
  "CMakeFiles/ehpsim_core.dir/roofline.cc.o.d"
  "CMakeFiles/ehpsim_core.dir/trace.cc.o"
  "CMakeFiles/ehpsim_core.dir/trace.cc.o.d"
  "libehpsim_core.a"
  "libehpsim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ehpsim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
