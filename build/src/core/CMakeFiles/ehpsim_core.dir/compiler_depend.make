# Empty compiler generated dependencies file for ehpsim_core.
# This may be replaced when dependencies are built.
