file(REMOVE_RECURSE
  "libehpsim_sim.a"
)
