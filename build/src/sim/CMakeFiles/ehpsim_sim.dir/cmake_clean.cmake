file(REMOVE_RECURSE
  "CMakeFiles/ehpsim_sim.dir/event_queue.cc.o"
  "CMakeFiles/ehpsim_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/ehpsim_sim.dir/logging.cc.o"
  "CMakeFiles/ehpsim_sim.dir/logging.cc.o.d"
  "CMakeFiles/ehpsim_sim.dir/rng.cc.o"
  "CMakeFiles/ehpsim_sim.dir/rng.cc.o.d"
  "CMakeFiles/ehpsim_sim.dir/stats.cc.o"
  "CMakeFiles/ehpsim_sim.dir/stats.cc.o.d"
  "CMakeFiles/ehpsim_sim.dir/units.cc.o"
  "CMakeFiles/ehpsim_sim.dir/units.cc.o.d"
  "libehpsim_sim.a"
  "libehpsim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ehpsim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
