# Empty dependencies file for ehpsim_sim.
# This may be replaced when dependencies are built.
