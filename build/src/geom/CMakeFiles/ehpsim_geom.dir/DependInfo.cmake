
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geom/alignment.cc" "src/geom/CMakeFiles/ehpsim_geom.dir/alignment.cc.o" "gcc" "src/geom/CMakeFiles/ehpsim_geom.dir/alignment.cc.o.d"
  "/root/repo/src/geom/bonding.cc" "src/geom/CMakeFiles/ehpsim_geom.dir/bonding.cc.o" "gcc" "src/geom/CMakeFiles/ehpsim_geom.dir/bonding.cc.o.d"
  "/root/repo/src/geom/floorplan.cc" "src/geom/CMakeFiles/ehpsim_geom.dir/floorplan.cc.o" "gcc" "src/geom/CMakeFiles/ehpsim_geom.dir/floorplan.cc.o.d"
  "/root/repo/src/geom/footprint.cc" "src/geom/CMakeFiles/ehpsim_geom.dir/footprint.cc.o" "gcc" "src/geom/CMakeFiles/ehpsim_geom.dir/footprint.cc.o.d"
  "/root/repo/src/geom/power_delivery.cc" "src/geom/CMakeFiles/ehpsim_geom.dir/power_delivery.cc.o" "gcc" "src/geom/CMakeFiles/ehpsim_geom.dir/power_delivery.cc.o.d"
  "/root/repo/src/geom/transform.cc" "src/geom/CMakeFiles/ehpsim_geom.dir/transform.cc.o" "gcc" "src/geom/CMakeFiles/ehpsim_geom.dir/transform.cc.o.d"
  "/root/repo/src/geom/tsv_grid.cc" "src/geom/CMakeFiles/ehpsim_geom.dir/tsv_grid.cc.o" "gcc" "src/geom/CMakeFiles/ehpsim_geom.dir/tsv_grid.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ehpsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
