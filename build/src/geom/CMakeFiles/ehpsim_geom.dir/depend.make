# Empty dependencies file for ehpsim_geom.
# This may be replaced when dependencies are built.
