file(REMOVE_RECURSE
  "libehpsim_geom.a"
)
