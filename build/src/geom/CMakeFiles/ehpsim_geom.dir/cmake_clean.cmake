file(REMOVE_RECURSE
  "CMakeFiles/ehpsim_geom.dir/alignment.cc.o"
  "CMakeFiles/ehpsim_geom.dir/alignment.cc.o.d"
  "CMakeFiles/ehpsim_geom.dir/bonding.cc.o"
  "CMakeFiles/ehpsim_geom.dir/bonding.cc.o.d"
  "CMakeFiles/ehpsim_geom.dir/floorplan.cc.o"
  "CMakeFiles/ehpsim_geom.dir/floorplan.cc.o.d"
  "CMakeFiles/ehpsim_geom.dir/footprint.cc.o"
  "CMakeFiles/ehpsim_geom.dir/footprint.cc.o.d"
  "CMakeFiles/ehpsim_geom.dir/power_delivery.cc.o"
  "CMakeFiles/ehpsim_geom.dir/power_delivery.cc.o.d"
  "CMakeFiles/ehpsim_geom.dir/transform.cc.o"
  "CMakeFiles/ehpsim_geom.dir/transform.cc.o.d"
  "CMakeFiles/ehpsim_geom.dir/tsv_grid.cc.o"
  "CMakeFiles/ehpsim_geom.dir/tsv_grid.cc.o.d"
  "libehpsim_geom.a"
  "libehpsim_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ehpsim_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
