
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/soc/floorplan_builder.cc" "src/soc/CMakeFiles/ehpsim_soc.dir/floorplan_builder.cc.o" "gcc" "src/soc/CMakeFiles/ehpsim_soc.dir/floorplan_builder.cc.o.d"
  "/root/repo/src/soc/multi_socket.cc" "src/soc/CMakeFiles/ehpsim_soc.dir/multi_socket.cc.o" "gcc" "src/soc/CMakeFiles/ehpsim_soc.dir/multi_socket.cc.o.d"
  "/root/repo/src/soc/node_topology.cc" "src/soc/CMakeFiles/ehpsim_soc.dir/node_topology.cc.o" "gcc" "src/soc/CMakeFiles/ehpsim_soc.dir/node_topology.cc.o.d"
  "/root/repo/src/soc/package.cc" "src/soc/CMakeFiles/ehpsim_soc.dir/package.cc.o" "gcc" "src/soc/CMakeFiles/ehpsim_soc.dir/package.cc.o.d"
  "/root/repo/src/soc/product_config.cc" "src/soc/CMakeFiles/ehpsim_soc.dir/product_config.cc.o" "gcc" "src/soc/CMakeFiles/ehpsim_soc.dir/product_config.cc.o.d"
  "/root/repo/src/soc/utilization.cc" "src/soc/CMakeFiles/ehpsim_soc.dir/utilization.cc.o" "gcc" "src/soc/CMakeFiles/ehpsim_soc.dir/utilization.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ehpsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/ehpsim_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ehpsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/ehpsim_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/coherence/CMakeFiles/ehpsim_coherence.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/ehpsim_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/ehpsim_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/hsa/CMakeFiles/ehpsim_hsa.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/ehpsim_power.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
