file(REMOVE_RECURSE
  "libehpsim_soc.a"
)
