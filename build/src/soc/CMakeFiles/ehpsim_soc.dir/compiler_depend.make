# Empty compiler generated dependencies file for ehpsim_soc.
# This may be replaced when dependencies are built.
