file(REMOVE_RECURSE
  "CMakeFiles/ehpsim_soc.dir/floorplan_builder.cc.o"
  "CMakeFiles/ehpsim_soc.dir/floorplan_builder.cc.o.d"
  "CMakeFiles/ehpsim_soc.dir/multi_socket.cc.o"
  "CMakeFiles/ehpsim_soc.dir/multi_socket.cc.o.d"
  "CMakeFiles/ehpsim_soc.dir/node_topology.cc.o"
  "CMakeFiles/ehpsim_soc.dir/node_topology.cc.o.d"
  "CMakeFiles/ehpsim_soc.dir/package.cc.o"
  "CMakeFiles/ehpsim_soc.dir/package.cc.o.d"
  "CMakeFiles/ehpsim_soc.dir/product_config.cc.o"
  "CMakeFiles/ehpsim_soc.dir/product_config.cc.o.d"
  "CMakeFiles/ehpsim_soc.dir/utilization.cc.o"
  "CMakeFiles/ehpsim_soc.dir/utilization.cc.o.d"
  "libehpsim_soc.a"
  "libehpsim_soc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ehpsim_soc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
