# Empty dependencies file for ehpsim_gpu.
# This may be replaced when dependencies are built.
