file(REMOVE_RECURSE
  "CMakeFiles/ehpsim_gpu.dir/cdna.cc.o"
  "CMakeFiles/ehpsim_gpu.dir/cdna.cc.o.d"
  "CMakeFiles/ehpsim_gpu.dir/compute_unit.cc.o"
  "CMakeFiles/ehpsim_gpu.dir/compute_unit.cc.o.d"
  "CMakeFiles/ehpsim_gpu.dir/xcd.cc.o"
  "CMakeFiles/ehpsim_gpu.dir/xcd.cc.o.d"
  "libehpsim_gpu.a"
  "libehpsim_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ehpsim_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
