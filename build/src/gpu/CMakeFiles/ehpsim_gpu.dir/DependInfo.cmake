
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpu/cdna.cc" "src/gpu/CMakeFiles/ehpsim_gpu.dir/cdna.cc.o" "gcc" "src/gpu/CMakeFiles/ehpsim_gpu.dir/cdna.cc.o.d"
  "/root/repo/src/gpu/compute_unit.cc" "src/gpu/CMakeFiles/ehpsim_gpu.dir/compute_unit.cc.o" "gcc" "src/gpu/CMakeFiles/ehpsim_gpu.dir/compute_unit.cc.o.d"
  "/root/repo/src/gpu/xcd.cc" "src/gpu/CMakeFiles/ehpsim_gpu.dir/xcd.cc.o" "gcc" "src/gpu/CMakeFiles/ehpsim_gpu.dir/xcd.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ehpsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ehpsim_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
