file(REMOVE_RECURSE
  "libehpsim_gpu.a"
)
