# Empty compiler generated dependencies file for ehpsim_hsa.
# This may be replaced when dependencies are built.
