
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hsa/partition.cc" "src/hsa/CMakeFiles/ehpsim_hsa.dir/partition.cc.o" "gcc" "src/hsa/CMakeFiles/ehpsim_hsa.dir/partition.cc.o.d"
  "/root/repo/src/hsa/queue.cc" "src/hsa/CMakeFiles/ehpsim_hsa.dir/queue.cc.o" "gcc" "src/hsa/CMakeFiles/ehpsim_hsa.dir/queue.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ehpsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ehpsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/ehpsim_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/ehpsim_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/coherence/CMakeFiles/ehpsim_coherence.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
