file(REMOVE_RECURSE
  "CMakeFiles/ehpsim_hsa.dir/partition.cc.o"
  "CMakeFiles/ehpsim_hsa.dir/partition.cc.o.d"
  "CMakeFiles/ehpsim_hsa.dir/queue.cc.o"
  "CMakeFiles/ehpsim_hsa.dir/queue.cc.o.d"
  "libehpsim_hsa.a"
  "libehpsim_hsa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ehpsim_hsa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
