file(REMOVE_RECURSE
  "libehpsim_hsa.a"
)
