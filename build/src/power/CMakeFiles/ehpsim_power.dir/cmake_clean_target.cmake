file(REMOVE_RECURSE
  "libehpsim_power.a"
)
