file(REMOVE_RECURSE
  "CMakeFiles/ehpsim_power.dir/governor.cc.o"
  "CMakeFiles/ehpsim_power.dir/governor.cc.o.d"
  "CMakeFiles/ehpsim_power.dir/power_model.cc.o"
  "CMakeFiles/ehpsim_power.dir/power_model.cc.o.d"
  "CMakeFiles/ehpsim_power.dir/thermal.cc.o"
  "CMakeFiles/ehpsim_power.dir/thermal.cc.o.d"
  "libehpsim_power.a"
  "libehpsim_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ehpsim_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
