# Empty dependencies file for ehpsim_power.
# This may be replaced when dependencies are built.
