file(REMOVE_RECURSE
  "libehpsim_workloads.a"
)
