file(REMOVE_RECURSE
  "CMakeFiles/ehpsim_workloads.dir/generators.cc.o"
  "CMakeFiles/ehpsim_workloads.dir/generators.cc.o.d"
  "CMakeFiles/ehpsim_workloads.dir/workload.cc.o"
  "CMakeFiles/ehpsim_workloads.dir/workload.cc.o.d"
  "libehpsim_workloads.a"
  "libehpsim_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ehpsim_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
