# Empty dependencies file for ehpsim_workloads.
# This may be replaced when dependencies are built.
