file(REMOVE_RECURSE
  "CMakeFiles/ehpsim_mem.dir/cache.cc.o"
  "CMakeFiles/ehpsim_mem.dir/cache.cc.o.d"
  "CMakeFiles/ehpsim_mem.dir/cache_array.cc.o"
  "CMakeFiles/ehpsim_mem.dir/cache_array.cc.o.d"
  "CMakeFiles/ehpsim_mem.dir/dram.cc.o"
  "CMakeFiles/ehpsim_mem.dir/dram.cc.o.d"
  "CMakeFiles/ehpsim_mem.dir/hbm_subsystem.cc.o"
  "CMakeFiles/ehpsim_mem.dir/hbm_subsystem.cc.o.d"
  "CMakeFiles/ehpsim_mem.dir/infinity_cache.cc.o"
  "CMakeFiles/ehpsim_mem.dir/infinity_cache.cc.o.d"
  "CMakeFiles/ehpsim_mem.dir/interleave.cc.o"
  "CMakeFiles/ehpsim_mem.dir/interleave.cc.o.d"
  "libehpsim_mem.a"
  "libehpsim_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ehpsim_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
