file(REMOVE_RECURSE
  "libehpsim_mem.a"
)
