# Empty dependencies file for ehpsim_mem.
# This may be replaced when dependencies are built.
