# Empty compiler generated dependencies file for ehpsim_fabric.
# This may be replaced when dependencies are built.
