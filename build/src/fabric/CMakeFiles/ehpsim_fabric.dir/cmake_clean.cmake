file(REMOVE_RECURSE
  "CMakeFiles/ehpsim_fabric.dir/link.cc.o"
  "CMakeFiles/ehpsim_fabric.dir/link.cc.o.d"
  "CMakeFiles/ehpsim_fabric.dir/network.cc.o"
  "CMakeFiles/ehpsim_fabric.dir/network.cc.o.d"
  "libehpsim_fabric.a"
  "libehpsim_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ehpsim_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
