file(REMOVE_RECURSE
  "libehpsim_fabric.a"
)
