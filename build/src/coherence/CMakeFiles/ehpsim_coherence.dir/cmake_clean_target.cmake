file(REMOVE_RECURSE
  "libehpsim_coherence.a"
)
