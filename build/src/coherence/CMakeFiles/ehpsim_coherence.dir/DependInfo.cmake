
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/coherence/gpu_directory.cc" "src/coherence/CMakeFiles/ehpsim_coherence.dir/gpu_directory.cc.o" "gcc" "src/coherence/CMakeFiles/ehpsim_coherence.dir/gpu_directory.cc.o.d"
  "/root/repo/src/coherence/gpu_scope.cc" "src/coherence/CMakeFiles/ehpsim_coherence.dir/gpu_scope.cc.o" "gcc" "src/coherence/CMakeFiles/ehpsim_coherence.dir/gpu_scope.cc.o.d"
  "/root/repo/src/coherence/probe_filter.cc" "src/coherence/CMakeFiles/ehpsim_coherence.dir/probe_filter.cc.o" "gcc" "src/coherence/CMakeFiles/ehpsim_coherence.dir/probe_filter.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ehpsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ehpsim_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
