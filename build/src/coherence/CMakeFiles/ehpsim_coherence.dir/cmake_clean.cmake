file(REMOVE_RECURSE
  "CMakeFiles/ehpsim_coherence.dir/gpu_directory.cc.o"
  "CMakeFiles/ehpsim_coherence.dir/gpu_directory.cc.o.d"
  "CMakeFiles/ehpsim_coherence.dir/gpu_scope.cc.o"
  "CMakeFiles/ehpsim_coherence.dir/gpu_scope.cc.o.d"
  "CMakeFiles/ehpsim_coherence.dir/probe_filter.cc.o"
  "CMakeFiles/ehpsim_coherence.dir/probe_filter.cc.o.d"
  "libehpsim_coherence.a"
  "libehpsim_coherence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ehpsim_coherence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
