# Empty dependencies file for ehpsim_coherence.
# This may be replaced when dependencies are built.
