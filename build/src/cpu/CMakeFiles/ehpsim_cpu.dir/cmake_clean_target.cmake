file(REMOVE_RECURSE
  "libehpsim_cpu.a"
)
