file(REMOVE_RECURSE
  "CMakeFiles/ehpsim_cpu.dir/ccd.cc.o"
  "CMakeFiles/ehpsim_cpu.dir/ccd.cc.o.d"
  "CMakeFiles/ehpsim_cpu.dir/zen_core.cc.o"
  "CMakeFiles/ehpsim_cpu.dir/zen_core.cc.o.d"
  "libehpsim_cpu.a"
  "libehpsim_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ehpsim_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
