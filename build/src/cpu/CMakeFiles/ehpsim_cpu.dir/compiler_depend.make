# Empty compiler generated dependencies file for ehpsim_cpu.
# This may be replaced when dependencies are built.
