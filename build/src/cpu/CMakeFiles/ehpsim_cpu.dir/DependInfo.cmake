
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpu/ccd.cc" "src/cpu/CMakeFiles/ehpsim_cpu.dir/ccd.cc.o" "gcc" "src/cpu/CMakeFiles/ehpsim_cpu.dir/ccd.cc.o.d"
  "/root/repo/src/cpu/zen_core.cc" "src/cpu/CMakeFiles/ehpsim_cpu.dir/zen_core.cc.o" "gcc" "src/cpu/CMakeFiles/ehpsim_cpu.dir/zen_core.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ehpsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ehpsim_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
