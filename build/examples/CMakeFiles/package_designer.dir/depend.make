# Empty dependencies file for package_designer.
# This may be replaced when dependencies are built.
