file(REMOVE_RECURSE
  "CMakeFiles/package_designer.dir/package_designer.cpp.o"
  "CMakeFiles/package_designer.dir/package_designer.cpp.o.d"
  "package_designer"
  "package_designer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/package_designer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
