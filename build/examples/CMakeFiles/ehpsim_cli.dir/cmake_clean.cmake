file(REMOVE_RECURSE
  "CMakeFiles/ehpsim_cli.dir/ehpsim_cli.cpp.o"
  "CMakeFiles/ehpsim_cli.dir/ehpsim_cli.cpp.o.d"
  "ehpsim_cli"
  "ehpsim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ehpsim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
