# Empty compiler generated dependencies file for ehpsim_cli.
# This may be replaced when dependencies are built.
