# Empty dependencies file for cfd_unified_memory.
# This may be replaced when dependencies are built.
