file(REMOVE_RECURSE
  "CMakeFiles/cfd_unified_memory.dir/cfd_unified_memory.cpp.o"
  "CMakeFiles/cfd_unified_memory.dir/cfd_unified_memory.cpp.o.d"
  "cfd_unified_memory"
  "cfd_unified_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfd_unified_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
