file(REMOVE_RECURSE
  "CMakeFiles/node_explorer.dir/node_explorer.cpp.o"
  "CMakeFiles/node_explorer.dir/node_explorer.cpp.o.d"
  "node_explorer"
  "node_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/node_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
