# Empty dependencies file for node_explorer.
# This may be replaced when dependencies are built.
