
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/node_explorer.cpp" "examples/CMakeFiles/node_explorer.dir/node_explorer.cpp.o" "gcc" "examples/CMakeFiles/node_explorer.dir/node_explorer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ehpsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/ehpsim_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/ehpsim_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/hsa/CMakeFiles/ehpsim_hsa.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/ehpsim_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/ehpsim_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/coherence/CMakeFiles/ehpsim_coherence.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/ehpsim_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/ehpsim_power.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ehpsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/ehpsim_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ehpsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
